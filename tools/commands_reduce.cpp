// tracered reduce — reduce a trace file with any of the nine methods,
// offline (whole trace in memory), --streaming (chunked reader feeding a
// ReductionSession record by record, so the trace never has to fit in
// memory), or --remote (stream the file's bytes to a `tracered serve`
// daemon and receive the reduced trace back). All modes produce
// byte-identical output files (tested).
#include <chrono>
#include <cstdio>
#include <optional>

#include "commands.hpp"

#include "core/reduction_report.hpp"
#include "core/reduction_session.hpp"
#include "serve/client.hpp"
#include "trace/segmenter.hpp"
#include "trace/trace_io.hpp"
#include "util/table.hpp"

namespace tracered::tools {

namespace {

/// Per-rank completion printer for --progress (stderr, so stdout stays
/// parseable). Strides so 1024-rank sweeps do not spam.
core::ProgressFn progressPrinter() {
  return [](std::size_t done, std::size_t total) {
    const std::size_t stride = total > 64 ? total / 16 : 8;
    if (done == total || done % stride == 0)
      std::fprintf(stderr, "  ... %zu/%zu ranks reduced\n", done, total);
  };
}

/// STATS keys the batch path only prints under --stats; the remote path
/// filters the server's rows by the same set so both modes show the same
/// table for the same flags.
bool isStatsRow(const std::string& key) {
  return key == "reduce wall ms" || key == "reps scanned" ||
         key == "pruned by pre-filter" || key == "prune rate" ||
         key == "reps visited (exact)" || key == "index pruned" ||
         key == "index prune rate" || key == "pivot distance evals";
}

int runRemoteReduce(const CliArgs& args, const std::string& input,
                    const core::ReductionConfig& config) {
  for (const char* flag : {"streaming", "threads", "progress"})
    if (args.has(flag))
      throw UsageError("--" + std::string(flag) +
                       " does not apply with --remote (the daemon owns the "
                       "streaming and the thread pool)");
  for (const char* flag : {"merge", "merge-config", "merge-shard", "merge-out"})
    if (args.has(flag))
      throw UsageError("--" + std::string(flag) +
                       " does not apply with --remote: the serve protocol has no "
                       "merged-trace frame (docs/SERVE.md), so the merge stage runs "
                       "only where the per-rank reduction lives. Reduce with --merge "
                       "locally instead.");
  const std::string addr = args.get("remote");
  const int retryMs = static_cast<int>(args.getInt("connect-timeout-ms", 5000));
  const std::vector<std::uint8_t> bytes = readFile(input);

  const serve::RemoteReduceResult rr =
      serve::reduceRemote(addr, config.toString(), bytes.data(), bytes.size(), retryMs);

  const bool stats = args.getBool("stats");
  TextTable t;
  t.header({"criterion", "value"});
  t.row({"mode", "remote"});
  t.row({"server", addr});
  t.row({"input", input + " (" + fmtBytes(bytes.size()) + " streamed)"});
  for (const auto& [key, value] : rr.statsRows)
    if (stats || !isStatsRow(key)) t.row({key, value});
  std::printf("%s", t.str().c_str());

  const std::string out = args.get("out");
  if (!out.empty()) {
    // The daemon's bytes verbatim — `cmp` against the batch path's file is
    // the cookbook's acceptance check.
    writeFile(out, rr.trrBytes);
    std::printf("wrote %s\n", out.c_str());
  }
  return 0;
}

int runReduce(const CliArgs& args) {
  const std::string input = requirePositional(args, 0, "<input trace file>");
  core::ReductionConfig config;
  try {
    config = core::ReductionConfig::fromName(args.get("config", "relDiff"));
  } catch (const std::invalid_argument& e) {
    // A typo'd method spec is a usage error (exit 2 + help), not a runtime
    // failure, like every other unparseable flag value — checked before
    // connecting anywhere, so --remote with a bad spec never dials out.
    throw UsageError(e.what());
  }
  if (args.has("remote")) return runRemoteReduce(args, input, config);

  config.numThreads = static_cast<int>(args.getInt("threads", 1));
  const bool streaming = args.getBool("streaming");
  const bool progress = args.getBool("progress");
  const bool stats = args.getBool("stats");
  const std::string out = args.get("out");

  const bool merge = args.getBool("merge");
  for (const char* flag : {"merge-config", "merge-shard", "merge-out"})
    if (!merge && args.has(flag))
      throw UsageError("--" + std::string(flag) + " requires --merge");
  core::MergeOptions mergeOptions;
  if (merge) {
    try {
      mergeOptions.config = args.has("merge-config")
                                ? core::ReductionConfig::fromName(args.get("merge-config"))
                                : config;
    } catch (const std::invalid_argument& e) {
      throw UsageError(e.what());
    }
    mergeOptions.config.numThreads = config.numThreads;  // --threads drives both stages
    const long long shard = args.getInt("merge-shard", 64);
    if (shard < 1) throw UsageError("--merge-shard must be >= 1");
    mergeOptions.shardRanks = static_cast<std::size_t>(shard);
  }

  core::ReductionResult result;
  std::optional<core::MergeResult> mergeResult;
  std::size_t records = 0;
  std::size_t fullBytes = 0;  // serialized TRF1 bytes; 0 = unknown
  TraceFileReader reader(input);

  const auto reduceStart = std::chrono::steady_clock::now();
  if (streaming) {
    core::ReductionSession session(reader.names(), config);
    if (merge) session.setMergeOptions(mergeOptions);
    if (progress) session.onProgress(progressPrinter());
    reader.streamRecords(
        [&](Rank rank, const RawRecord& rec) {
          session.feed(rank, rec);
          if (progress && session.recordsFed() % 500000 == 0)
            std::fprintf(stderr, "  ... fed %zu records\n", session.recordsFed());
        },
        [&](Rank rank) { session.ensureRank(rank); });
    records = session.recordsFed();
    result = session.finish();
    mergeResult = session.takeMergeResult();
    // A binary input file IS the serialized full trace; for text input the
    // binary size would require materializing the trace, which streaming
    // mode exists to avoid.
    if (reader.format() == TraceFileFormat::kFullBinary) fullBytes = fileSizeBytes(input);
  } else {
    const Trace trace = reader.readAll();
    records = trace.totalRecords();
    core::ReductionSession session(trace.names(), config);
    if (merge) session.setMergeOptions(mergeOptions);
    if (progress) session.onProgress(progressPrinter());
    result = session.reduce(segmentTrace(trace));
    mergeResult = session.takeMergeResult();
    fullBytes = fullTraceSize(trace);
  }
  const double reduceMs = std::chrono::duration<double, std::milli>(
                              std::chrono::steady_clock::now() - reduceStart)
                              .count();

  // The shared report rows (core/reduction_report) with the mode/input rows
  // only this front end knows spliced in after "config" — the serve daemon
  // emits the same shared rows in its STATS frame, so the two tables cannot
  // drift.
  core::ReportRows rows =
      core::reductionReportRows(config, result, records, fullBytes);
  rows.insert(rows.begin() + 1, {{"mode", streaming ? "streaming" : "offline"},
                                 {"input", input + " (" + formatName(reader.format()) + ")"}});
  if (stats) {
    rows.emplace_back("reduce wall ms", fmtF(reduceMs, 1));
    const core::ReportRows counterRows = core::matchCounterRows(result.counters);
    rows.insert(rows.end(), counterRows.begin(), counterRows.end());
  }
  if (mergeResult) {
    const core::ReportRows mergeRows = core::mergeReportRows(mergeOptions, *mergeResult);
    rows.insert(rows.end(), mergeRows.begin(), mergeRows.end());
    if (stats) {
      const core::ReportRows mergeCounters =
          core::matchCounterRows(mergeResult->stats.counters, "merge ");
      rows.insert(rows.end(), mergeCounters.begin(), mergeCounters.end());
    }
  }
  TextTable t;
  t.header({"criterion", "value"});
  for (const auto& [key, value] : rows) t.row({key, value});
  std::printf("%s", t.str().c_str());

  if (!out.empty()) {
    writeFile(out, serializeReducedTrace(result.reduced));
    std::printf("wrote %s\n", out.c_str());
  }
  const std::string mergeOut = args.get("merge-out");
  if (!mergeOut.empty() && mergeResult) {
    writeFile(mergeOut, serializeMergedTrace(mergeResult->merged));
    std::printf("wrote %s\n", mergeOut.c_str());
  }
  return 0;
}

}  // namespace

CliCommand makeReduceCommand() {
  CliCommand c;
  c.name = "reduce";
  c.usage = "reduce <input> [--config <method[@threshold]>] [flags]";
  c.summary = "reduce a trace file (nine methods; offline, --streaming, or --remote)";
  c.flags = {
      {"config", "<m[@t]>",
       "similarity method and threshold, e.g. avgWave@0.2 (default relDiff at its "
       "paper threshold)"},
      {"out", "<file>", "write the reduced trace (TRR1) here"},
      {"streaming", "", "feed the file through the chunked reader record by record"},
      {"remote", "<addr>",
       "stream the file to a `tracered serve` daemon (unix:<path> or "
       "tcp:<host>:<port>) instead of reducing in-process"},
      {"connect-timeout-ms", "<ms>",
       "with --remote: keep retrying the connect this long, for daemons still "
       "starting up (default 5000)"},
      {"threads", "<n>", "reduction worker threads; 0 = hardware concurrency (default 1)"},
      {"merge", "",
       "fold the per-rank reduction into one application-wide trace (hierarchical "
       "cross-rank merge; bit-identical to the serial pass for any --threads / "
       "--merge-shard)"},
      {"merge-config", "<m[@t]>",
       "similarity method and threshold for the merge stage (default: same as "
       "--config)"},
      {"merge-shard", "<n>",
       "ranks buffered per merge tree shard (default 64; affects memory and wall "
       "clock, never the output)"},
      {"merge-out", "<file>", "write the merged trace (TRM1) here"},
      {"progress", "", "report per-rank progress on stderr"},
      {"stats", "",
       "append matching-cost rows (wall ms, reps scanned/visited, pre-filter "
       "and index prune rates)"},
  };
  c.run = runReduce;
  return c;
}

}  // namespace tracered::tools
