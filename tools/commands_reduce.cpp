// tracered reduce — reduce a trace file with any of the nine methods,
// offline (whole trace in memory) or --streaming (chunked reader feeding a
// ReductionSession record by record, so the trace never has to fit in
// memory). Both modes produce byte-identical output files (tested).
#include <chrono>
#include <cstdio>

#include "commands.hpp"

#include "core/reduction_session.hpp"
#include "trace/segmenter.hpp"
#include "trace/trace_io.hpp"
#include "util/table.hpp"

namespace tracered::tools {

namespace {

/// Per-rank completion printer for --progress (stderr, so stdout stays
/// parseable). Strides so 1024-rank sweeps do not spam.
core::ProgressFn progressPrinter() {
  return [](std::size_t done, std::size_t total) {
    const std::size_t stride = total > 64 ? total / 16 : 8;
    if (done == total || done % stride == 0)
      std::fprintf(stderr, "  ... %zu/%zu ranks reduced\n", done, total);
  };
}

int runReduce(const CliArgs& args) {
  const std::string input = requirePositional(args, 0, "<input trace file>");
  core::ReductionConfig config;
  try {
    config = core::ReductionConfig::fromName(args.get("config", "relDiff"));
  } catch (const std::invalid_argument& e) {
    // A typo'd method spec is a usage error (exit 2 + help), not a runtime
    // failure, like every other unparseable flag value.
    throw UsageError(e.what());
  }
  config.numThreads = static_cast<int>(args.getInt("threads", 1));
  const bool streaming = args.getBool("streaming");
  const bool progress = args.getBool("progress");
  const bool stats = args.getBool("stats");
  const std::string out = args.get("out");

  core::ReductionResult result;
  std::size_t records = 0;
  std::size_t fullBytes = 0;  // serialized TRF1 bytes; 0 = unknown
  TraceFileReader reader(input);

  const auto reduceStart = std::chrono::steady_clock::now();
  if (streaming) {
    core::ReductionSession session(reader.names(), config);
    if (progress) session.onProgress(progressPrinter());
    reader.streamRecords(
        [&](Rank rank, const RawRecord& rec) {
          session.feed(rank, rec);
          if (progress && session.recordsFed() % 500000 == 0)
            std::fprintf(stderr, "  ... fed %zu records\n", session.recordsFed());
        },
        [&](Rank rank) { session.ensureRank(rank); });
    records = session.recordsFed();
    result = session.finish();
    // A binary input file IS the serialized full trace; for text input the
    // binary size would require materializing the trace, which streaming
    // mode exists to avoid.
    if (reader.format() == TraceFileFormat::kFullBinary) fullBytes = fileSizeBytes(input);
  } else {
    const Trace trace = reader.readAll();
    records = trace.totalRecords();
    core::ReductionSession session(trace.names(), config);
    if (progress) session.onProgress(progressPrinter());
    result = session.reduce(segmentTrace(trace));
    fullBytes = fullTraceSize(trace);
  }
  const double reduceMs = std::chrono::duration<double, std::milli>(
                              std::chrono::steady_clock::now() - reduceStart)
                              .count();

  const std::size_t reducedBytes = reducedTraceSize(result.reduced);
  TextTable t;
  t.header({"criterion", "value"});
  t.row({"config", config.toString()});
  t.row({"mode", streaming ? "streaming" : "offline"});
  t.row({"input", input + " (" + formatName(reader.format()) + ")"});
  t.row({"ranks", std::to_string(result.reduced.ranks.size())});
  t.row({"records", std::to_string(records)});
  t.row({"segments", std::to_string(result.stats.totalSegments)});
  t.row({"stored", std::to_string(result.stats.storedSegments)});
  t.row({"matches", std::to_string(result.stats.matches)});
  t.row({"degree of matching", fmtF(result.stats.degreeOfMatching(), 3)});
  t.row({"full trace bytes", fullBytes == 0 ? "-" : fmtBytes(fullBytes)});
  t.row({"reduced bytes", fmtBytes(reducedBytes)});
  t.row({"file %", fullBytes == 0
                       ? "-"
                       : fmtPct(100.0 * static_cast<double>(reducedBytes) /
                                static_cast<double>(fullBytes))});
  if (stats) {
    // The matching-cost rows: wall clock of the reduce phase (read + match;
    // everything this command does before sizing the result), plus the
    // hot-loop instrumentation — representatives examined, how many a norm
    // pre-filter rejected before any full vector walk, and what the
    // per-bucket match index did (entries excluded by a window or pivot
    // bound vs entries that survived to an exact comparison, and the
    // distance evaluations the index spent on pivot maintenance).
    t.row({"reduce wall ms", fmtF(reduceMs, 1)});
    t.row({"reps scanned", std::to_string(result.counters.comparisons)});
    t.row({"pruned by pre-filter", std::to_string(result.counters.pruned)});
    t.row({"prune rate", fmtPct(100.0 * result.counters.pruneRate())});
    t.row({"reps visited (exact)", std::to_string(result.counters.indexVisited)});
    t.row({"index pruned", std::to_string(result.counters.indexPruned)});
    t.row({"index prune rate", fmtPct(100.0 * result.counters.indexPruneRate())});
    t.row({"pivot distance evals", std::to_string(result.counters.pivotDistEvals)});
  }
  std::printf("%s", t.str().c_str());

  if (!out.empty()) {
    writeFile(out, serializeReducedTrace(result.reduced));
    std::printf("wrote %s\n", out.c_str());
  }
  return 0;
}

}  // namespace

CliCommand makeReduceCommand() {
  CliCommand c;
  c.name = "reduce";
  c.usage = "reduce <input> [--config <method[@threshold]>] [flags]";
  c.summary = "reduce a trace file (nine methods, offline or --streaming)";
  c.flags = {
      {"config", "<m[@t]>",
       "similarity method and threshold, e.g. avgWave@0.2 (default relDiff at its "
       "paper threshold)"},
      {"out", "<file>", "write the reduced trace (TRR1) here"},
      {"streaming", "", "feed the file through the chunked reader record by record"},
      {"threads", "<n>", "reduction worker threads; 0 = hardware concurrency (default 1)"},
      {"progress", "", "report per-rank progress on stderr"},
      {"stats", "",
       "append matching-cost rows (wall ms, reps scanned/visited, pre-filter "
       "and index prune rates)"},
  };
  c.run = runReduce;
  return c;
}

}  // namespace tracered::tools
