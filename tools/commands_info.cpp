// tracered info — one-screen summary of any trace file: format, ranks,
// records/segments (full traces, counted through the chunked reader without
// materializing the trace) or stored/exec tables (reduced traces), names,
// time span, on-disk size.
#include <algorithm>
#include <cstdio>
#include <set>

#include "commands.hpp"

#include "core/reconstruct.hpp"
#include "trace/trace_io.hpp"
#include "util/table.hpp"

namespace tracered::tools {

namespace {

int runInfo(const CliArgs& args) {
  const std::string input = requirePositional(args, 0, "<trace file>");
  const bool json = args.getBool("json");
  const TraceFileFormat format = detectTraceFile(input);
  const std::size_t bytes = fileSizeBytes(input);

  if (format == TraceFileFormat::kReducedBinary) {
    const ReducedTrace reduced = deserializeReducedTrace(readFile(input));
    const core::ReductionStats stats = core::statsFromReduced(reduced);
    if (json) {
      std::printf(
          "{\"file\":\"%s\",\"format\":\"reduced\",\"bytes\":%zu,\"ranks\":%zu,"
          "\"storedSegments\":%zu,\"segmentExecs\":%zu,\"names\":%zu,"
          "\"degreeOfMatching\":%.6f}\n",
          jsonEscape(input).c_str(), bytes, reduced.ranks.size(), reduced.totalStored(),
          reduced.totalExecs(), reduced.names.size(), stats.degreeOfMatching());
      return 0;
    }
    TextTable t;
    t.header({"property", "value"});
    t.row({"file", input});
    t.row({"format", formatName(format)});
    t.row({"size", fmtBytes(bytes)});
    t.row({"ranks", std::to_string(reduced.ranks.size())});
    t.row({"stored segments", std::to_string(reduced.totalStored())});
    t.row({"segment execs", std::to_string(reduced.totalExecs())});
    t.row({"names", std::to_string(reduced.names.size())});
    t.row({"degree of matching", fmtF(stats.degreeOfMatching(), 3)});
    std::printf("%s", t.str().c_str());
    return 0;
  }

  if (format == TraceFileFormat::kMergedBinary) {
    const MergedReducedTrace merged = deserializeMergedTrace(readFile(input));
    std::size_t execs = merged.totalExecs();
    if (json) {
      std::printf(
          "{\"file\":\"%s\",\"format\":\"merged\",\"bytes\":%zu,\"ranks\":%zu,"
          "\"sharedSegments\":%zu,\"segmentExecs\":%zu,\"names\":%zu}\n",
          jsonEscape(input).c_str(), bytes, merged.rankIds.size(),
          merged.sharedStore.size(), execs, merged.names.size());
      return 0;
    }
    TextTable t;
    t.header({"property", "value"});
    t.row({"file", input});
    t.row({"format", formatName(format)});
    t.row({"size", fmtBytes(bytes)});
    t.row({"ranks", std::to_string(merged.rankIds.size())});
    t.row({"shared segments", std::to_string(merged.sharedStore.size())});
    t.row({"segment execs", std::to_string(execs)});
    t.row({"names", std::to_string(merged.names.size())});
    std::printf("%s", t.str().c_str());
    return 0;
  }

  // Full trace (binary or text): single streaming pass, bounded memory.
  TraceFileReader reader(input);
  std::size_t records = 0, segments = 0, events = 0;
  std::set<Rank> ranksWithRecords;
  TimeUs minTime = 0, maxTime = 0;
  bool any = false;
  reader.streamRecords([&](Rank rank, const RawRecord& rec) {
    ++records;
    ranksWithRecords.insert(rank);
    if (rec.kind == RecordKind::kSegBegin) ++segments;
    if (rec.kind == RecordKind::kEnter) ++events;
    if (!any) {
      minTime = maxTime = rec.time;
      any = true;
    } else {
      minTime = std::min(minTime, rec.time);
      maxTime = std::max(maxTime, rec.time);
    }
  });
  const TimeUs spanUs = any ? maxTime - minTime : 0;
  // Declared ranks that emitted nothing — onRank announces every declared
  // rank (including idle ones), so idleness is defined by record counts.
  const std::size_t idleRanks = reader.numRanks() - ranksWithRecords.size();

  if (json) {
    std::printf(
        "{\"file\":\"%s\",\"format\":\"%s\",\"bytes\":%zu,\"ranks\":%zu,"
        "\"records\":%zu,\"segments\":%zu,\"events\":%zu,\"names\":%zu,"
        "\"spanUs\":%lld}\n",
        jsonEscape(input).c_str(),
        reader.format() == TraceFileFormat::kText ? "text" : "full", bytes,
        reader.numRanks(), records, segments, events, reader.names().size(),
        static_cast<long long>(spanUs));
    return 0;
  }
  TextTable t;
  t.header({"property", "value"});
  t.row({"file", input});
  t.row({"format", formatName(reader.format())});
  t.row({"size", fmtBytes(bytes)});
  t.row({"ranks", std::to_string(reader.numRanks())});
  if (idleRanks > 0) t.row({"idle ranks", std::to_string(idleRanks)});
  t.row({"records", std::to_string(records)});
  t.row({"segments", std::to_string(segments)});
  t.row({"events", std::to_string(events)});
  t.row({"names", std::to_string(reader.names().size())});
  t.row({"time span", fmtF(static_cast<double>(spanUs) / 1e6, 3) + " s"});
  std::printf("%s", t.str().c_str());
  return 0;
}

}  // namespace

CliCommand makeInfoCommand() {
  CliCommand c;
  c.name = "info";
  c.usage = "info <file> [--json]";
  c.summary = "summarize a trace file (ranks/records/segments/size)";
  c.flags = {
      {"json", "", "emit one JSON object instead of a table"},
  };
  c.run = runInfo;
  return c;
}

}  // namespace tracered::tools
