// The eight tracered subcommands plus the small helpers they share.
//
// Each commands_*.cpp defines one CliCommand factory: flag metadata (which
// doubles as the known-flag set for did-you-mean typo reports) plus the
// handler. tracered_main.cpp registers them with a CliApp. Handlers signal
// bad invocations with UsageError (exit 2) and let file/format/runtime
// errors propagate as ordinary exceptions (exit 1); docs/CLI.md is the
// man-page-style reference for all of them.
#pragma once

#include <cstddef>
#include <string>

#include "trace/segment.hpp"
#include "trace/string_table.hpp"
#include "trace/trace_file.hpp"
#include "util/cli.hpp"

namespace tracered::tools {

CliCommand makeGenerateCommand();
CliCommand makeReduceCommand();
CliCommand makeInfoCommand();
CliCommand makeConvertCommand();
CliCommand makeAnalyzeCommand();
CliCommand makeDiffCommand();
CliCommand makeEvalCommand();
CliCommand makeServeCommand();

/// Any on-disk trace, brought to its segmented view: full traces (TRF1 /
/// text) are segmented directly, reduced (TRR1) and cross-rank merged
/// (TRM1) files are reconstructed first (Sec. 4.3.3). One loader shared by
/// analyze/diff/eval, so every analysis entry point reads every format.
struct LoadedSegments {
  TraceFileFormat format = TraceFileFormat::kFullBinary;
  StringTable names;        ///< The file's interned name table.
  SegmentedTrace segmented;
  std::size_t canonicalBytes = 0;  ///< Serialized binary size of the input.
};

/// Reads `path` (format auto-detected) into its segmented view.
LoadedSegments loadSegments(const std::string& path);

/// Positional argument `index`, or UsageError naming the missing operand.
std::string requirePositional(const CliArgs& args, std::size_t index, const char* what);

/// The --out flag's value, or UsageError.
std::string requireOut(const CliArgs& args);

/// Parses a --format value: "binary" -> kFullBinary, "text" -> kText;
/// UsageError otherwise.
TraceFileFormat parseFormatFlag(const std::string& value);

/// On-disk size of `path` in bytes; throws std::runtime_error if absent.
std::size_t fileSizeBytes(const std::string& path);

/// Escapes `s` for inclusion in a JSON string literal.
std::string jsonEscape(const std::string& s);

}  // namespace tracered::tools
