// The six tracered subcommands plus the small helpers they share.
//
// Each commands_*.cpp defines one CliCommand factory: flag metadata (which
// doubles as the known-flag set for did-you-mean typo reports) plus the
// handler. tracered_main.cpp registers them with a CliApp. Handlers signal
// bad invocations with UsageError (exit 2) and let file/format/runtime
// errors propagate as ordinary exceptions (exit 1); docs/CLI.md is the
// man-page-style reference for all of them.
#pragma once

#include <cstddef>
#include <string>

#include "trace/trace_file.hpp"
#include "util/cli.hpp"

namespace tracered::tools {

CliCommand makeGenerateCommand();
CliCommand makeReduceCommand();
CliCommand makeInfoCommand();
CliCommand makeConvertCommand();
CliCommand makeEvalCommand();
CliCommand makeServeCommand();

/// Positional argument `index`, or UsageError naming the missing operand.
std::string requirePositional(const CliArgs& args, std::size_t index, const char* what);

/// The --out flag's value, or UsageError.
std::string requireOut(const CliArgs& args);

/// Parses a --format value: "binary" -> kFullBinary, "text" -> kText;
/// UsageError otherwise.
TraceFileFormat parseFormatFlag(const std::string& value);

/// On-disk size of `path` in bytes; throws std::runtime_error if absent.
std::size_t fileSizeBytes(const std::string& path);

/// Escapes `s` for inclusion in a JSON string literal.
std::string jsonEscape(const std::string& s);

}  // namespace tracered::tools
