// tracered serve — the long-running trace-ingest daemon (docs/SERVE.md).
//
//   tracered serve --listen unix:/tmp/tracered.sock --listen tcp:127.0.0.1:7411
//
// Prints one "listening on <addr>" line per bound address (port 0 resolved)
// so scripts can scrape the actual endpoint, then serves until SIGINT /
// SIGTERM (handled via Server::stop(), which is async-signal-safe) or until
// --max-traces streams have been served — the one-shot mode the cookbook and
// CLI tests script against.
#include <csignal>
#include <cstdio>

#include "commands.hpp"

#include "serve/server.hpp"
#include "util/version.hpp"

namespace tracered::tools {

namespace {

serve::Server* gServer = nullptr;

void handleStopSignal(int) {
  if (gServer != nullptr) gServer->stop();
}

int runServe(const CliArgs& args) {
  serve::ServerOptions options;
  options.listenAddrs = args.getAll("listen");
  if (options.listenAddrs.empty())
    throw UsageError("at least one --listen <addr> is required (unix:<path> or "
                     "tcp:<host>:<port>)");
  const std::int64_t window = args.getInt("window", 0);
  if (window != 0) {
    if (window < 4096) throw UsageError("--window must be at least 4096 bytes");
    options.windowBytes = static_cast<std::size_t>(window);
  }
  options.threads = static_cast<int>(args.getInt("threads", 0));
  const std::int64_t maxClients = args.getInt("max-clients", 256);
  if (maxClients < 1) throw UsageError("--max-clients must be at least 1");
  options.maxConnections = static_cast<std::size_t>(maxClients);
  options.maxTraces = static_cast<std::uint64_t>(args.getInt("max-traces", 0));

  serve::Server server(std::move(options));

  for (const std::string& addr : server.boundAddresses())
    std::printf("listening on %s\n", addr.c_str());
  std::fflush(stdout);  // scripts scrape these lines through a pipe

  gServer = &server;
  struct sigaction sa = {};
  sa.sa_handler = handleStopSignal;
  ::sigaction(SIGINT, &sa, nullptr);
  ::sigaction(SIGTERM, &sa, nullptr);

  server.run();
  gServer = nullptr;

  const serve::Server::Metrics m = server.metrics();
  std::fprintf(stderr,
               "serve: %llu connections, %llu traces served, %llu protocol errors, "
               "%llu abrupt disconnects, peak buffered %zu bytes\n",
               static_cast<unsigned long long>(m.connectionsAccepted),
               static_cast<unsigned long long>(m.tracesServed),
               static_cast<unsigned long long>(m.protocolErrors),
               static_cast<unsigned long long>(m.abruptDisconnects),
               m.peakConnBufferedBytes);
  return 0;
}

}  // namespace

CliCommand makeServeCommand() {
  CliCommand c;
  c.name = "serve";
  c.usage = "serve --listen <addr> [--listen <addr>...] [flags]";
  c.summary = "run the trace-ingest daemon (protocol v" +
              std::to_string(util::kServeProtocolVersion) + ", docs/SERVE.md)";
  c.flags = {
      {"listen", "<addr>",
       "bind address, repeatable: unix:<path> or tcp:<host>:<port> (port 0 = "
       "kernel-assigned, printed on startup)"},
      {"window", "<bytes>",
       "per-connection receive window: input ring capacity and backpressure "
       "bound (default 262144)"},
      {"threads", "<n>",
       "shared reduction pool width; 0 = hardware concurrency (default 0)"},
      {"max-clients", "<n>", "concurrent connection cap (default 256)"},
      {"max-traces", "<n>",
       "exit after serving this many traces; 0 = run until SIGINT/SIGTERM "
       "(default 0)"},
  };
  c.run = runServe;
  return c;
}

}  // namespace tracered::tools
