// tracered diff — the detection loop's gate, in two modes selected by what
// the second operand is (or forced with --mode):
//
//   quality    <full> <reduced|merged>: does the reduced trace still support
//              the full trace's diagnosis? compareTrends (Sec. 4.3.4) with a
//              retained/degraded/lost verdict; exit 0/0/1.
//   regression <run-A> <run-B>: did run B get worse than run A? Cube
//              subtraction per (metric, call-site) cell with configurable
//              thresholds; exit 1 iff a wait-metric cell regressed.
//
// Both modes map their thresholds from TrendCompareOptions flags, load
// either operand through the shared any-format loader, and render from
// analysis/report rows — byte-deterministic given (traces, flags).
#include <cstdio>
#include <string>
#include <utility>
#include <vector>

#include "commands.hpp"

#include "analysis/analyzer.hpp"
#include "analysis/compare.hpp"
#include "analysis/report.hpp"
#include "util/table.hpp"

namespace tracered::tools {

namespace {

/// The TrendCompareOptions surface as flags; shared by both modes (the
/// regression mode uses the severity tolerance and significance floor).
analysis::TrendCompareOptions trendOptionsFromFlags(const CliArgs& args) {
  analysis::TrendCompareOptions opts;
  opts.severityTolerance = args.getDouble("severity-tolerance", opts.severityTolerance);
  opts.degradedTolerance = args.getDouble("degraded-tolerance", opts.degradedTolerance);
  opts.correlationMin = args.getDouble("correlation-min", opts.correlationMin);
  opts.cvNonUniform = args.getDouble("cv-nonuniform", opts.cvNonUniform);
  opts.spuriousFraction = args.getDouble("spurious-fraction", opts.spuriousFraction);
  opts.insignificantFraction =
      args.getDouble("insignificant-fraction", opts.insignificantFraction);
  opts.negativeFraction = args.getDouble("negative-fraction", opts.negativeFraction);
  opts.significanceFloorUs =
      args.getDouble("significance-floor-us", opts.significanceFloorUs);
  opts.execDisparityFraction =
      args.getDouble("exec-disparity-fraction", opts.execDisparityFraction);
  const std::pair<const char*, double> nonNegative[] = {
      {"severity-tolerance", opts.severityTolerance},
      {"degraded-tolerance", opts.degradedTolerance},
      {"cv-nonuniform", opts.cvNonUniform},
      {"spurious-fraction", opts.spuriousFraction},
      {"insignificant-fraction", opts.insignificantFraction},
      {"negative-fraction", opts.negativeFraction},
      {"significance-floor-us", opts.significanceFloorUs},
      {"exec-disparity-fraction", opts.execDisparityFraction},
  };
  for (const auto& [flag, value] : nonNegative) {
    if (!(value >= 0.0))
      throw UsageError(std::string("bad --") + flag + " (expected a value >= 0)");
  }
  if (!(opts.correlationMin >= -1.0) || !(opts.correlationMin <= 1.0))
    throw UsageError("bad --correlation-min (expected a value in [-1, 1])");
  return opts;
}

const char* jsonBool(bool b) { return b ? "true" : "false"; }

int runQuality(const std::string& fullPath, const LoadedSegments& full,
               const std::string& reducedPath, const LoadedSegments& reduced,
               const analysis::SeverityCube& fullCube, analysis::SeverityCube reducedCube,
               const analysis::TrendCompareOptions& opts, bool json) {
  // The two files may have interned their name tables in different orders;
  // compare in the full trace's name space.
  StringTable names = full.names;
  reducedCube = analysis::remapCallsites(reducedCube, reduced.names, names);
  const analysis::TrendComparison trends =
      analysis::compareTrends(fullCube, reducedCube, opts);
  const std::string callsite = trends.dominantCallsite == kInvalidName
                                   ? "-"
                                   : names.name(trends.dominantCallsite);

  if (json) {
    std::printf(
        "{\"mode\":\"quality\",\"full\":\"%s\",\"reduced\":\"%s\",\"ranks\":%d,"
        "\"verdict\":\"%s\",\"reason\":\"%s\",\"dominantMetric\":\"%s\","
        "\"dominantAbbrev\":\"%s\",\"dominantCallsite\":\"%s\","
        "\"severityFullUs\":%.3f,\"severityReducedUs\":%.3f,\"relError\":%.6f,"
        "\"correlation\":%.6f,\"dominantChanged\":%s,\"disparityLost\":%s,"
        "\"spuriousDiagnosis\":%s,\"negativeDiagnosis\":%s}\n",
        jsonEscape(fullPath).c_str(), jsonEscape(reducedPath).c_str(),
        fullCube.numRanks(), analysis::verdictName(trends.verdict),
        jsonEscape(trends.reason).c_str(), analysis::metricName(trends.dominantMetric),
        analysis::metricAbbrev(trends.dominantMetric), jsonEscape(callsite).c_str(),
        trends.fullTotal, trends.reducedTotal, trends.relError, trends.correlation,
        jsonBool(trends.dominantChanged), jsonBool(trends.disparityLost),
        jsonBool(trends.spuriousDiagnosis), jsonBool(trends.negativeDiagnosis));
  } else {
    TextTable t;
    t.header({"criterion", "value"});
    t.row({"mode", "quality (full vs reduced)"});
    t.row({"full trace", fullPath + " (" + formatName(full.format) + ")"});
    t.row({"reduced trace", reducedPath + " (" + formatName(reduced.format) + ")"});
    for (const auto& [k, v] : analysis::trendReportRows(trends, names)) t.row({k, v});
    std::printf("%s", t.str().c_str());
  }
  return trends.verdict == analysis::Verdict::kLost ? 1 : 0;
}

int runRegression(const std::string& basePath, const LoadedSegments& base,
                  const std::string& candPath, const LoadedSegments& cand,
                  const analysis::SeverityCube& baseCube,
                  const analysis::SeverityCube& candCube,
                  const analysis::TrendCompareOptions& opts, bool json) {
  const analysis::RegressionOptions ropts{opts.severityTolerance,
                                          opts.significanceFloorUs};
  const std::vector<analysis::DeltaReportRow> rows =
      analysis::deltaReportRows(baseCube, base.names, candCube, cand.names, ropts);
  std::size_t regressions = 0;
  for (const analysis::DeltaReportRow& r : rows) regressions += r.regression ? 1 : 0;

  if (json) {
    std::printf(
        "{\"mode\":\"regression\",\"baseline\":\"%s\",\"candidate\":\"%s\","
        "\"ranks\":%d,\"severityToleranceUsed\":%.6f,\"significanceFloorUs\":%.3f,"
        "\"regressions\":%zu,\"cells\":[",
        jsonEscape(basePath).c_str(), jsonEscape(candPath).c_str(), baseCube.numRanks(),
        ropts.severityTolerance, ropts.significanceFloorUs, regressions);
    for (std::size_t i = 0; i < rows.size(); ++i) {
      const analysis::DeltaReportRow& r = rows[i];
      std::printf(
          "%s{\"metric\":\"%s\",\"abbrev\":\"%s\",\"callsite\":\"%s\","
          "\"baselineUs\":%.3f,\"candidateUs\":%.3f,\"deltaUs\":%.3f,"
          "\"relDelta\":%.6f,\"regression\":%s}",
          i == 0 ? "" : ",", analysis::metricName(r.metric),
          analysis::metricAbbrev(r.metric), jsonEscape(r.callsite).c_str(), r.baselineUs,
          r.candidateUs, r.deltaUs, r.relDelta, jsonBool(r.regression));
    }
    std::printf("]}\n");
  } else {
    TextTable head;
    head.header({"criterion", "value"});
    head.row({"mode", "regression (run A vs run B)"});
    head.row({"baseline", basePath + " (" + formatName(base.format) + ")"});
    head.row({"candidate", candPath + " (" + formatName(cand.format) + ")"});
    head.row({"regressions", std::to_string(regressions)});
    std::printf("%s\n", head.str().c_str());

    TextTable t;
    t.header({"metric", "call site", "A (s)", "B (s)", "delta (s)", "delta %", "flag"});
    for (const analysis::DeltaReportRow& r : rows)
      t.row({analysis::metricAbbrev(r.metric), r.callsite, fmtF(r.baselineUs / 1e6, 3),
             fmtF(r.candidateUs / 1e6, 3), fmtF(r.deltaUs / 1e6, 3),
             fmtF(100.0 * r.relDelta, 1), r.regression ? "REGRESSION" : ""});
    std::printf("%s", t.str().c_str());
  }
  return regressions > 0 ? 1 : 0;
}

int runDiff(const CliArgs& args) {
  const std::string pathA = requirePositional(args, 0, "<full | run-A trace>");
  const std::string pathB = requirePositional(args, 1, "<reduced | run-B trace>");
  const bool json = args.getBool("json");
  const std::string mode = args.get("mode", "auto");
  if (mode != "auto" && mode != "quality" && mode != "regression")
    throw UsageError("bad --mode '" + mode +
                     "' (expected 'auto', 'quality', or 'regression')");
  const analysis::TrendCompareOptions opts = trendOptionsFromFlags(args);
  analysis::AnalyzerOptions aopts;
  aopts.includeInitFinalize = args.getBool("include-init-finalize");

  const LoadedSegments a = loadSegments(pathA);
  const LoadedSegments b = loadSegments(pathB);
  const analysis::SeverityCube cubeA = analysis::analyze(a.segmented, aopts);
  const analysis::SeverityCube cubeB = analysis::analyze(b.segmented, aopts);

  // Auto mode: a reduced/merged second operand is a reduction of the first
  // (quality question); a full second operand is another run (regression
  // question).
  const bool quality =
      mode == "quality" ||
      (mode == "auto" && (b.format == TraceFileFormat::kReducedBinary ||
                          b.format == TraceFileFormat::kMergedBinary));
  if (quality) return runQuality(pathA, a, pathB, b, cubeA, cubeB, opts, json);
  return runRegression(pathA, a, pathB, b, cubeA, cubeB, opts, json);
}

}  // namespace

CliCommand makeDiffCommand() {
  CliCommand c;
  c.name = "diff";
  c.usage = "diff <full|run-A> <reduced|run-B> [--json] [--mode <m>] [thresholds]";
  c.summary = "quality-gate a reduction, or detect regressions between two runs";
  c.flags = {
      {"json", "", "emit one JSON object instead of tables"},
      {"mode", "<m>", "auto|quality|regression (default auto: reduced/merged "
                      "second operand selects quality)"},
      {"include-init-finalize", "",
       "count MPI_Init/MPI_Finalize skew as Wait-at-Barrier severity"},
      {"severity-tolerance", "<f>",
       "relative severity error/worsening tolerated (default 0.25)"},
      {"degraded-tolerance", "<f>",
       "quality: relative error above which the verdict is lost (default 0.75)"},
      {"correlation-min", "<f>",
       "quality: minimum per-rank profile correlation (default 0.90)"},
      {"cv-nonuniform", "<f>",
       "quality: coefficient of variation above which a profile is shaped "
       "(default 0.25)"},
      {"spurious-fraction", "<f>",
       "quality: reduced cell vs dominant fraction that counts as spurious "
       "(default 0.50)"},
      {"insignificant-fraction", "<f>",
       "quality: 'insignificant in full' bound for spurious cells (default 0.10)"},
      {"negative-fraction", "<f>",
       "quality: underestimation marked as a negative diagnosis (default 0.25)"},
      {"significance-floor-us", "<f>",
       "total severity below which a cell is no problem (default 1000)"},
      {"exec-disparity-fraction", "<f>",
       "quality: exec-time cells at least this fraction of total are "
       "shape-checked (default 0.20)"},
  };
  c.run = runDiff;
  return c;
}

}  // namespace tracered::tools
