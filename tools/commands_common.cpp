#include <cstdio>
#include <filesystem>
#include <stdexcept>

#include "commands.hpp"

#include "core/cross_rank.hpp"
#include "core/reconstruct.hpp"
#include "trace/segmenter.hpp"
#include "trace/trace_io.hpp"

namespace tracered::tools {

std::string requirePositional(const CliArgs& args, std::size_t index, const char* what) {
  if (index >= args.positional().size())
    throw UsageError(std::string("missing operand: ") + what);
  return args.positional()[index];
}

std::string requireOut(const CliArgs& args) {
  const std::string out = args.get("out");
  if (out.empty()) throw UsageError("missing required flag --out <file>");
  return out;
}

TraceFileFormat parseFormatFlag(const std::string& value) {
  if (value == "binary") return TraceFileFormat::kFullBinary;
  if (value == "text") return TraceFileFormat::kText;
  throw UsageError("bad --format '" + value + "' (expected 'binary' or 'text')");
}

LoadedSegments loadSegments(const std::string& path) {
  LoadedSegments out;
  out.format = detectTraceFile(path);
  switch (out.format) {
    case TraceFileFormat::kReducedBinary: {
      const ReducedTrace reduced = deserializeReducedTrace(readFile(path));
      out.names = reduced.names;
      out.canonicalBytes = reducedTraceSize(reduced);
      out.segmented = core::reconstruct(reduced);
      break;
    }
    case TraceFileFormat::kMergedBinary: {
      const MergedReducedTrace merged = deserializeMergedTrace(readFile(path));
      out.names = merged.names;
      out.canonicalBytes = mergedTraceSize(merged);
      out.segmented = core::reconstructMerged(merged);
      break;
    }
    case TraceFileFormat::kFullBinary:
    case TraceFileFormat::kText: {
      TraceFileReader reader(path);
      const Trace trace = reader.readAll();
      out.names = trace.names();
      out.canonicalBytes = fullTraceSize(trace);
      out.segmented = segmentTrace(trace);
      break;
    }
  }
  return out;
}

std::size_t fileSizeBytes(const std::string& path) {
  std::error_code ec;
  const auto size = std::filesystem::file_size(path, ec);
  if (ec) throw std::runtime_error("cannot stat " + path + ": " + ec.message());
  return static_cast<std::size_t>(size);
}

std::string jsonEscape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

}  // namespace tracered::tools
