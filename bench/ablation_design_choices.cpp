// Ablation bench for the design choices DESIGN.md calls out:
//
//   1. Measurement-jitter sensitivity: how the enter-timestamp jitter that
//      drives relDiff's early-timestamp weakness changes matching rates.
//   2. Signature strictness: how much of the matching loss on sweep3d comes
//      from message-parameter differences (the paper's Sec. 5.2.1
//      observation) — measured by comparing possible matches under the full
//      signature vs a context-only grouping.
//   3. Wavelet padding: zero-padding vs the alternative of padding with the
//      last timestamp (a design decision the paper leaves implicit).
#include <algorithm>
#include <set>

#include "bench_common.hpp"
#include "sim/simulator.hpp"
#include "trace/segmenter.hpp"
#include "wavelet/wavelet.hpp"

using namespace tracered;
using namespace tracered::bench;

namespace {

// --- 1. jitter sensitivity --------------------------------------------------

void jitterAblation(const BenchOptions& opts) {
  TextTable t;
  t.header({"enter jitter (µs)", "relDiff@0.4 match deg", "absDiff@1e3 match deg"});
  for (TimeUs jitter : {0, 1, 2, 5, 10}) {
    ats::AtsConfig cfg;
    cfg.iterations = std::max(4, static_cast<int>(150 * opts.workload.scale));
    cfg.seed = opts.workload.seed;
    ats::Workload w = ats::makeBenchmark("late_sender", cfg);
    w.sim.cost.enterJitterMax = jitter;
    const Trace trace = sim::simulate(w.program, w.sim, w.noise.get());
    const eval::PreparedTrace prepared = eval::prepare(trace);
    const auto rel = eval::evaluateMethod(
        prepared,
        {.method = core::Method::kRelDiff, .threshold = 0.4, .executor = &opts.executor()});
    const auto abs = eval::evaluateMethod(
        prepared,
        {.method = core::Method::kAbsDiff, .threshold = 1e3, .executor = &opts.executor()});
    t.row({std::to_string(jitter), fmtF(rel.degreeOfMatching, 3),
           fmtF(abs.degreeOfMatching, 3)});
  }
  printTable(t, opts.csv,
             "Ablation 1: enter-jitter sensitivity (relDiff's early-timestamp "
             "weakness; absDiff is insensitive)");
}

// --- 2. signature strictness ------------------------------------------------

void signatureAblation(const BenchOptions& opts) {
  sweep3d::Sweep3DConfig cfg = sweep3d::config8p();
  cfg.iterations = std::max(2, static_cast<int>(8 * opts.workload.scale));
  cfg.seed = opts.workload.seed;
  const Trace trace = sweep3d::runSweep3D(cfg);
  const SegmentedTrace st = segmentTrace(trace);

  std::size_t total = 0, fullGroups = 0, contextGroups = 0;
  for (const auto& rank : st.ranks) {
    std::set<std::uint64_t> bySignature;
    std::set<NameId> byContext;
    for (const auto& seg : rank.segments) {
      bySignature.insert(seg.signature());
      byContext.insert(seg.context);
    }
    total += rank.segments.size();
    fullGroups += bySignature.size();
    contextGroups += byContext.size();
  }
  TextTable t;
  t.header({"grouping", "groups", "possible matches", "note"});
  t.row({"full signature (paper)", std::to_string(fullGroups),
         std::to_string(total - fullGroups),
         "message params split octants/roles"});
  t.row({"context only", std::to_string(contextGroups),
         std::to_string(total - contextGroups),
         "would falsely merge different sweep directions"});
  printTable(t, opts.csv,
             "Ablation 2: sweep3d segment grouping (Sec. 5.2.1: message-passing "
             "parameters cause segments not to match)");
}

// --- 3. wavelet padding -----------------------------------------------------

void paddingAblation(const BenchOptions& opts) {
  // Compare the transform distance of two jittered segments when padding
  // with zeros (paper) vs padding with the final timestamp. Zero padding
  // introduces an artificial cliff whose height tracks the segment end;
  // last-value padding removes the cliff, shrinking distances.
  TextTable t;
  t.header({"pair Δ (µs)", "dist zero-pad", "dist last-pad"});
  for (TimeUs delta : {5, 20, 80}) {
    std::vector<double> a = {0, 1, 900, 901, 1000};
    std::vector<double> b = {0, 1, 900.0 + delta, 901.0 + delta, 1000.0 + delta};
    auto padLast = [](std::vector<double> v) {
      const double last = v.back();
      v.resize(wavelet::nextPow2(v.size()), last);
      return v;
    };
    const double dz = wavelet::euclideanDistance(
        wavelet::avgTransform(wavelet::padToPow2(a)),
        wavelet::avgTransform(wavelet::padToPow2(b)));
    const double dl = wavelet::euclideanDistance(
        wavelet::avgTransform(padLast(a)), wavelet::avgTransform(padLast(b)));
    t.row({std::to_string(delta), fmtF(dz, 3), fmtF(dl, 3)});
  }
  printTable(t, opts.csv, "Ablation 3: wavelet padding choice");
}

}  // namespace

int main(int argc, char** argv) {
  const BenchOptions opts = BenchOptions::parse(argc, argv);
  jitterAblation(opts);
  signatureAblation(opts);
  paddingAblation(opts);
  return 0;
}
