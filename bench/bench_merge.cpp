// Cross-rank merge scale bench: the 1k/10k/100k sparse-rank rows of the perf
// trajectory. Builds one scenario:sparse_ranks batch, reduces it once, then
// feeds N re-labeled ranks through the incremental CrossRankMerger — the
// full N-rank reduced trace is never materialized, which is the point being
// measured: wall time at --threads 1 vs the parallel probe, merge ratio, and
// the best-effort peak-RSS growth per tier (ru_maxrss is monotonic, so tiers
// run in ascending order and each row reports growth over the previous
// high-water mark).
//
//   bench_merge [--scale f] [--seed n] [--threads n] [--shard n]
//               [--config m[@t]] [--tiers n,n,...] [--out file]
//
// The `bench_merge_smoke` ctest runs a small tier; CI appends the full
// 1k/10k/100k tiers to the BENCH_matching.json trajectory artifact.
#include <sys/resource.h>

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "core/cross_rank.hpp"
#include "core/reducer.hpp"
#include "trace/segmenter.hpp"
#include "trace/trace_io.hpp"

namespace tracered::bench {
namespace {

std::size_t peakRssKb() {
  rusage u{};
  getrusage(RUSAGE_SELF, &u);
  return static_cast<std::size_t>(u.ru_maxrss);
}

std::vector<std::size_t> parseTiers(const std::string& spec) {
  std::vector<std::size_t> tiers;
  std::size_t pos = 0;
  while (pos < spec.size()) {
    std::size_t next = spec.find(',', pos);
    if (next == std::string::npos) next = spec.size();
    tiers.push_back(static_cast<std::size_t>(std::stoull(spec.substr(pos, next - pos))));
    pos = next + 1;
  }
  return tiers;
}

/// Dilates a rank's stored segments by `factor` (×1024, integer), keeping
/// every event identity — so variant v only matches representatives of
/// variant v, and the shared store grows to O(variants × base), not O(N).
void dilate(RankReduced& rr, std::size_t num) {
  for (Segment& s : rr.stored) {
    s.end = s.end * static_cast<TimeUs>(num) / 1024;
    for (EventInterval& e : s.events) {
      e.start = e.start * static_cast<TimeUs>(num) / 1024;
      e.end = e.end * static_cast<TimeUs>(num) / 1024;
    }
  }
}

core::MergeResult mergeRelabeled(const ReducedTrace& base, std::size_t targetRanks,
                                 std::size_t variants, const core::MergeOptions& options) {
  core::CrossRankMerger merger(options);
  merger.addNames(base.names);
  Rank next = 0;
  while (merger.ranksAdded() < targetRanks)
    for (const RankReduced& rr : base.ranks) {
      if (merger.ranksAdded() >= targetRanks) break;
      RankReduced relabeled = rr;
      relabeled.rank = next;
      for (Segment& s : relabeled.stored) s.rank = next;
      // Cycle time-dilated variants (x1.0, x1.5, x2.0, ...): each rank's
      // probes must reject every other variant's representatives before
      // matching their own — real distance evaluations, which is what the
      // parallel probe tier exists to spread across threads.
      dilate(relabeled, 1024 + (static_cast<std::size_t>(next) % variants) * 512);
      ++next;
      merger.addRank(base.names, relabeled);
    }
  return merger.finish();
}

int run(int argc, char** argv) {
  const BenchOptions opts =
      BenchOptions::parse(argc, argv, {"config", "shard", "tiers", "variants", "out"});
  const std::size_t shard = static_cast<std::size_t>(opts.args().getInt("shard", 64));
  const std::size_t variants =
      std::max<std::size_t>(1, static_cast<std::size_t>(opts.args().getInt("variants", 16)));
  const std::vector<std::size_t> tiers =
      parseTiers(opts.args().get("tiers", "1000,10000,100000"));
  const std::string outPath = opts.args().get("out", "BENCH_merge.json");

  FILE* out = std::fopen(outPath.c_str(), "a");
  if (out == nullptr)
    std::fprintf(stderr, "bench_merge: cannot write %s; printing to stdout only\n",
                 outPath.c_str());
  auto emit = [&](const char* line) {
    std::fputs(line, stdout);
    if (out != nullptr) std::fputs(line, out);
  };

  // The base batch: one generated + reduced sparse_ranks scenario, recycled
  // (re-labeled) as the rank population of every tier.
  const Trace trace = eval::runWorkload("scenario:sparse_ranks", opts.workload);
  auto policy = core::makeDefaultPolicy(core::Method::kAvgWave);
  const ReducedTrace base =
      core::reduceTrace(segmentTrace(trace), trace.names(), *policy).reduced;

  core::MergeOptions serialOpts;
  // Default merge config: avgWave at its paper threshold — replicated ranks
  // still collapse into the base store, and the per-probe wavelet transform
  // is real work for the parallel tier to amortize. --config overrides.
  serialOpts.config = core::ReductionConfig::defaults(core::Method::kAvgWave);
  if (opts.args().has("config")) {
    try {
      serialOpts.config = core::ReductionConfig::fromName(opts.args().get("config"));
    } catch (const std::exception& e) {
      usageExit(opts.args(), e.what());
    }
  }
  serialOpts.config.numThreads = 1;
  serialOpts.shardRanks = shard;
  core::MergeOptions parallelOpts = serialOpts;
  // One shared pool across every flush and tier — the amortized-executor
  // story (README "Amortized pools"), not the pool-per-call shim.
  parallelOpts.config = parallelOpts.config.withExecutor(opts.executor());

  char line[512];
  std::snprintf(line, sizeof line,
                "{\"bench\":\"merge\",\"scenario\":\"scenario:sparse_ranks\","
                "\"scale\":%g,\"seed\":%llu,\"shard\":%zu,\"variants\":%zu,"
                "\"base_ranks\":%zu,\"base_reps\":%zu}\n",
                opts.workload.scale, static_cast<unsigned long long>(opts.workload.seed),
                shard, variants, base.ranks.size(), base.totalStored());
  emit(line);

  std::size_t rssHighKb = peakRssKb();
  for (const std::size_t ranks : tiers) {
    const auto t0 = std::chrono::steady_clock::now();
    const core::MergeResult serial = mergeRelabeled(base, ranks, variants, serialOpts);
    const auto t1 = std::chrono::steady_clock::now();
    const core::MergeResult parallel = mergeRelabeled(base, ranks, variants, parallelOpts);
    const auto t2 = std::chrono::steady_clock::now();
    if (serializeMergedTrace(parallel.merged) != serializeMergedTrace(serial.merged)) {
      std::fprintf(stderr, "bench_merge: parallel merge diverged from serial at %zu ranks\n",
                   ranks);
      return 1;
    }
    const double msSerial = std::chrono::duration<double, std::milli>(t1 - t0).count();
    const double msParallel = std::chrono::duration<double, std::milli>(t2 - t1).count();
    const std::size_t nowKb = peakRssKb();
    const std::size_t growthKb = nowKb > rssHighKb ? nowKb - rssHighKb : 0;
    rssHighKb = nowKb;
    std::snprintf(line, sizeof line,
                  "{\"bench\":\"merge\",\"ranks\":%zu,\"input_reps\":%zu,"
                  "\"merged_reps\":%zu,\"merge_ratio\":%.4f,\"trm1_bytes\":%zu,"
                  "\"ms_serial\":%.3f,\"ms_parallel\":%.3f,"
                  "\"peak_rss_growth_kb\":%zu}\n",
                  ranks, serial.stats.inputRepresentatives,
                  serial.stats.mergedRepresentatives, serial.stats.mergeRatio(),
                  mergedTraceSize(serial.merged), msSerial, msParallel, growthKb);
    emit(line);
  }
  if (out != nullptr) std::fclose(out);
  return 0;
}

}  // namespace
}  // namespace tracered::bench

int main(int argc, char** argv) { return tracered::bench::run(argc, argv); }
