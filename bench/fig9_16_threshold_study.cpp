// Figs. 9-16 reproduction: the threshold study on the 16 ATS benchmarks.
//
// One figure per method (relDiff, absDiff, Manhattan, Euclidean, Chebyshev,
// iter_k, avgWave, haarWave): file size (% of full) and approximation
// distance (µs) as the threshold sweeps the paper's values.
//
// Paper shape to check against: file sizes fall (iter_k: rise) monotonically
// with threshold; approximation distance stays low until a per-method knee
// (relDiff: after 0.8; absDiff: after 10^4; wavelets: after 0.2-0.4).
//
// Flags: --method <name> restricts to one method, --workload <name> to one
// benchmark.
#include "bench_common.hpp"

using namespace tracered;
using namespace tracered::bench;

int main(int argc, char** argv) {
  const BenchOptions opts = BenchOptions::parse(argc, argv, {"method", "workload"});
  const std::string onlyMethod = opts.args().get("method", "");
  const std::string onlyWorkload = opts.args().get("workload", "");
  TraceCache cache(opts.workload);

  int figure = 9;
  for (core::Method m : core::thresholdedMethods()) {
    if (!onlyMethod.empty() && onlyMethod != core::methodName(m)) {
      ++figure;
      continue;
    }
    TextTable sizeT, distT;
    std::vector<std::string> header = {"benchmark"};
    for (double t : core::studyThresholds(m)) header.push_back(fmtF(t, t < 1 ? 1 : 0));
    sizeT.header(header);
    distT.header(header);

    for (const std::string& name : eval::benchmarkWorkloads()) {
      if (!onlyWorkload.empty() && onlyWorkload != name) continue;
      const eval::PreparedTrace& prepared = cache.get(name);
      std::vector<std::string> sizeRow = {name};
      std::vector<std::string> distRow = {name};
      for (double t : core::studyThresholds(m)) {
        const eval::MethodEvaluation ev = eval::evaluateMethod(
            prepared, {.method = m, .threshold = t, .executor = &opts.executor()});
        sizeRow.push_back(fmtF(ev.filePct, 2));
        distRow.push_back(fmtF(ev.approxDistanceUs, 1));
      }
      sizeT.row(std::move(sizeRow));
      distT.row(std::move(distRow));
    }
    const std::string base =
        "Fig. " + std::to_string(figure) + " (" + core::methodName(m) + ")";
    printTable(sizeT, opts.csv, base + ": file size % vs threshold");
    printTable(distT, opts.csv, base + ": approximation distance (µs) vs threshold");
    ++figure;
  }
  return 0;
}
