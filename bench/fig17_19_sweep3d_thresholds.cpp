// Figs. 17-19 reproduction: the threshold study on sweep3d_8p and
// sweep3d_32p (file size % and approximation distance per method and
// threshold).
//
// Paper shape to check against: file size decreases steadily with threshold
// for relDiff/absDiff/Manhattan/Euclidean; Chebyshev decreases with
// threshold; iter_k's file size rises with k and dominates everyone; for
// Manhattan/Euclidean the approximation distance rises with threshold.
#include "bench_common.hpp"

using namespace tracered;
using namespace tracered::bench;

int main(int argc, char** argv) {
  const BenchOptions opts = BenchOptions::parse(argc, argv, {"method"});
  const std::string onlyMethod = opts.args().get("method", "");
  TraceCache cache(opts.workload);

  for (const std::string& name : {std::string("sweep3d_8p"), std::string("sweep3d_32p")}) {
    const eval::PreparedTrace& prepared = cache.get(name);
    for (core::Method m : core::thresholdedMethods()) {
      if (!onlyMethod.empty() && onlyMethod != core::methodName(m)) continue;
      TextTable t;
      t.header({"threshold", "file %", "degree of matching", "p90 |Δt| (µs)", "stored"});
      for (double thr : core::studyThresholds(m)) {
        const eval::MethodEvaluation ev = eval::evaluateMethod(
            prepared, {.method = m, .threshold = thr, .executor = &opts.executor()});
        t.row({fmtF(thr, thr < 1 ? 1 : 0), fmtF(ev.filePct, 2),
               fmtF(ev.degreeOfMatching, 3), fmtF(ev.approxDistanceUs, 1),
               std::to_string(ev.storedSegments)});
      }
      printTable(t, opts.csv,
                 "Figs. 17-19 (" + name + ", " + core::methodName(m) + ")");
    }
  }
  return 0;
}
