// Per-scenario bench rows for the perf trajectory: reduces every registered
// scenario with one config and appends one JSON line per scenario —
// segments, stored, reduction %, retained file %, matching-loop prune rate,
// wall ms, and the TRF1 corpus checksum — to stdout AND an output file
// (append mode, so CI can accumulate the rows into the BENCH_matching.json
// trajectory artifact next to the matching study's).
//
//   bench_scenarios [--scale f] [--seed n] [--threads n]
//                   [--config m[@t]] [--out file]
//
// The `bench_scenarios_smoke` ctest runs `--scale 0.1 --out
// BENCH_scenarios.json`; CI re-runs it with --out BENCH_matching.json after
// the matching smoke so both studies land in one archived file.
#include <chrono>
#include <cstdio>

#include "bench_common.hpp"
#include "core/reducer.hpp"
#include "trace/segmenter.hpp"
#include "trace/trace_io.hpp"
#include "util/hash.hpp"

namespace tracered::bench {
namespace {

int run(int argc, char** argv) {
  const BenchOptions opts = BenchOptions::parse(argc, argv, {"config", "out"});
  core::ReductionConfig config = core::ReductionConfig::defaults(core::Method::kEuclidean);
  if (opts.args().has("config")) {
    try {
      config = core::ReductionConfig::fromName(opts.args().get("config"));
    } catch (const std::invalid_argument& e) {
      usageExit(opts.args(), e.what());  // bad --config is exit 2, like --scale
    }
  }
  const std::string outPath = opts.args().get("out", "BENCH_scenarios.json");

  FILE* out = std::fopen(outPath.c_str(), "a");
  if (out == nullptr)
    std::fprintf(stderr, "bench_scenarios: cannot write %s; printing to stdout only\n",
                 outPath.c_str());
  auto emit = [&](const char* line) {
    std::fputs(line, stdout);
    if (out != nullptr) std::fputs(line, out);
  };

  char line[512];
  std::snprintf(line, sizeof line,
                "{\"bench\":\"scenarios\",\"config\":\"%s\",\"scale\":%g,\"seed\":%llu}\n",
                config.toString().c_str(), opts.workload.scale,
                static_cast<unsigned long long>(opts.workload.seed));
  emit(line);

  for (const std::string& name : eval::scenarioWorkloads()) {
    const Trace trace = eval::runWorkload(name, opts.workload);
    const SegmentedTrace segmented = segmentTrace(trace);
    const auto fullBytes = serializeFullTrace(trace);

    const auto t0 = std::chrono::steady_clock::now();
    const core::ReductionResult res =
        core::reduceTrace(segmented, trace.names(), config.withExecutor(opts.executor()));
    const auto t1 = std::chrono::steady_clock::now();
    const double ms = std::chrono::duration<double, std::milli>(t1 - t0).count();

    const std::size_t reducedSize = serializeReducedTrace(res.reduced).size();
    const double total = static_cast<double>(res.stats.totalSegments);
    std::snprintf(
        line, sizeof line,
        "{\"bench\":\"scenarios\",\"scenario\":\"%s\",\"ranks\":%zu,"
        "\"segments\":%zu,\"stored\":%zu,\"reduction_pct\":%.2f,"
        "\"file_pct\":%.2f,\"comparisons\":%zu,\"pruned\":%zu,"
        "\"prune_rate\":%.4f,\"ms\":%.3f,\"trf1_fnv1a\":\"%016llx\"}\n",
        name.c_str(), segmented.ranks.size(), res.stats.totalSegments,
        res.stats.storedSegments,
        total > 0 ? 100.0 * (1.0 - static_cast<double>(res.stats.storedSegments) / total)
                  : 0.0,
        100.0 * static_cast<double>(reducedSize) / static_cast<double>(fullBytes.size()),
        res.counters.comparisons, res.counters.pruned, res.counters.pruneRate(), ms,
        static_cast<unsigned long long>(util::fnv1a64(fullBytes)));
    emit(line);
  }
  if (out != nullptr) std::fclose(out);
  return 0;
}

}  // namespace
}  // namespace tracered::bench

int main(int argc, char** argv) { return tracered::bench::run(argc, argv); }
