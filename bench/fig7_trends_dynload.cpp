// Fig. 7 reproduction: "KOJAK Performance Trends for dyn_load_balance For
// Each Method at Default Thresholds".
//
// Shows, for the full trace and for each method's reconstructed trace, the
// per-rank severity charts for MPI_Alltoall ("Wait at NxN") and do_work
// (execution time): one digit per rank, scaled against the full trace.
//
// Paper shape to check against: the full trace shows lower ranks heavy in
// MPI_Alltoall and upper ranks heavy in do_work; absDiff, Manhattan,
// Euclidean, avgWave, haarWave keep the NxN disparity; iter_avg and iter_k
// flatten it.
#include "analysis/render.hpp"
#include "bench_common.hpp"

using namespace tracered;
using namespace tracered::bench;

int main(int argc, char** argv) {
  const BenchOptions opts = BenchOptions::parse(argc, argv);
  TraceCache cache(opts.workload);
  const eval::PreparedTrace& prepared = cache.get("dyn_load_balance");

  const std::vector<analysis::ChartRow> rows = {
      {analysis::Metric::kWaitAtNxN, "MPI_Alltoall"},
      {analysis::Metric::kExecutionTime, "do_work"},
  };

  std::printf("== Fig. 7: dyn_load_balance trend charts ==\n");
  std::printf("(one digit per rank 0..7, scaled to the full trace's row max)\n\n");
  std::printf("%s", analysis::renderChart(prepared.fullCube, prepared.fullCube,
                                          prepared.trace.names(), rows, "no_loss")
                        .c_str());
  std::printf("\n");

  TextTable verdicts;
  verdicts.header({"method", "threshold", "verdict", "why"});
  for (core::Method m : core::allMethods()) {
    const eval::MethodEvaluation ev = eval::evaluateMethodDefault(prepared, m, &opts.executor());
    std::printf("%s", analysis::renderChart(ev.reducedCube, prepared.fullCube,
                                            prepared.trace.names(), rows,
                                            core::methodName(m))
                          .c_str());
    verdicts.row({core::methodName(m), fmtF(ev.threshold, 1),
                  analysis::verdictName(ev.trends.verdict), ev.trends.reason});
  }
  std::printf("\n");
  printTable(verdicts, opts.csv, "Fig. 7 verdicts (comparator, Sec. 4.3.4 guidelines)");
  return 0;
}
