// Extension bench: the paper's future-work directions, evaluated with the
// same criteria as the nine studied methods.
//
//   1. Trace sampling ("investigating additional difference methods, such as
//      trace sampling"): periodic keep-every-k and probabilistic keep-with-p
//      sampling across benchmarks, versus iter_k (their closest relative in
//      the studied set) and avgWave (the paper's winner).
//   2. A richer application set ("evaluating the methods against a richer
//      set of full application traces"): the Halo2D stencil proxy, balanced,
//      with a hotspot rank, and under ASCI-Q-style noise.
#include "analysis/profile.hpp"
#include "bench_common.hpp"
#include "core/cross_rank.hpp"
#include "core/reconstruct.hpp"
#include "core/sampling.hpp"
#include "halo/halo2d.hpp"
#include "trace/segmenter.hpp"

using namespace tracered;
using namespace tracered::bench;

namespace {

/// Evaluates an arbitrary policy with the standard criteria.
eval::MethodEvaluation evaluatePolicy(const eval::PreparedTrace& prepared,
                                      core::SimilarityPolicy& policy) {
  eval::MethodEvaluation out;
  const core::ReductionResult res =
      core::reduceTrace(prepared.segmented, prepared.trace.names(), policy);
  out.fullBytes = prepared.fullBytes;
  out.reducedBytes = reducedTraceSize(res.reduced);
  out.filePct = 100.0 * static_cast<double>(out.reducedBytes) /
                static_cast<double>(out.fullBytes);
  out.degreeOfMatching = res.stats.degreeOfMatching();
  out.storedSegments = res.stats.storedSegments;
  out.totalSegments = res.stats.totalSegments;
  const SegmentedTrace rec = core::reconstruct(res.reduced);
  out.approxDistanceUs = eval::approximationDistance(prepared.segmented, rec);
  out.reducedCube = analysis::analyze(rec);
  out.trends = analysis::compareTrends(prepared.fullCube, out.reducedCube);
  return out;
}

void samplingStudy(TraceCache& cache, const BenchOptions& opts) {
  const std::vector<std::string> workloads = {"late_sender", "dyn_load_balance",
                                              "1to1r_1024", "NtoN_1024"};
  for (const std::string& name : workloads) {
    const eval::PreparedTrace& prepared = cache.get(name);
    TextTable t;
    t.header({"policy", "file %", "match deg", "p90 err (µs)", "trends"});

    for (int k : {2, 5, 10, 50}) {
      core::PeriodicSamplingPolicy p(k);
      const auto ev = evaluatePolicy(prepared, p);
      t.row({"sample_every_" + std::to_string(k), fmtF(ev.filePct, 2),
             fmtF(ev.degreeOfMatching, 3), fmtF(ev.approxDistanceUs, 1),
             analysis::verdictName(ev.trends.verdict)});
    }
    for (double prob : {0.5, 0.2, 0.1, 0.02}) {
      core::RandomSamplingPolicy p(prob, opts.workload.seed);
      const auto ev = evaluatePolicy(prepared, p);
      t.row({"sample_p=" + fmtF(prob, 2), fmtF(ev.filePct, 2),
             fmtF(ev.degreeOfMatching, 3), fmtF(ev.approxDistanceUs, 1),
             analysis::verdictName(ev.trends.verdict)});
    }
    for (core::Method m : {core::Method::kIterK, core::Method::kAvgWave}) {
      const auto ev = eval::evaluateMethodDefault(prepared, m, &opts.executor());
      t.row({std::string(core::methodName(m)) + " (ref)", fmtF(ev.filePct, 2),
             fmtF(ev.degreeOfMatching, 3), fmtF(ev.approxDistanceUs, 1),
             analysis::verdictName(ev.trends.verdict)});
    }
    printTable(t, opts.csv, "Future work 1: trace sampling on " + name);
  }
}

void halo2dStudy(const BenchOptions& opts) {
  struct Scenario {
    const char* label;
    halo::Halo2DConfig cfg;
    bool noisy;
  };
  halo::Halo2DConfig base;
  base.iterations = std::max(8, static_cast<int>(100 * opts.workload.scale));
  base.seed = opts.workload.seed;
  halo::Halo2DConfig hotspot = base;
  hotspot.hotspotRank = 5;
  hotspot.hotspotFactor = 1.6;
  const Scenario scenarios[] = {
      {"halo2d_balanced", base, false},
      {"halo2d_hotspot", hotspot, false},
      {"halo2d_noise1024", base, true},
  };

  for (const Scenario& sc : scenarios) {
    std::unique_ptr<sim::NoiseModel> noise;
    if (sc.noisy) noise = sim::makeAsciQ1024Noise(opts.workload.seed);
    const eval::PreparedTrace prepared =
        eval::prepare(halo::runHalo2D(sc.cfg, noise.get()));

    TextTable t;
    t.header({"method", "file %", "match deg", "p90 err (µs)", "profile err", "trends"});
    const analysis::Profile originalProfile =
        analysis::Profile::fromTrace(prepared.segmented);
    for (core::Method m : core::allMethods()) {
      const eval::MethodEvaluation ev = eval::evaluateMethodDefault(prepared, m, &opts.executor());
      // Aggregate-profile distortion (the Ratn-et-al.-style check).
      auto policy = core::makeDefaultPolicy(m);
      const core::ReductionResult res =
          core::reduceTrace(prepared.segmented, prepared.trace.names(), *policy);
      const analysis::ProfileDistortion dist = analysis::compareProfiles(
          originalProfile,
          analysis::Profile::fromTrace(core::reconstruct(res.reduced)));
      t.row({core::methodName(m), fmtF(ev.filePct, 2), fmtF(ev.degreeOfMatching, 3),
             fmtF(ev.approxDistanceUs, 1), fmtPct(100.0 * dist.maxTotalRelError, 1),
             analysis::verdictName(ev.trends.verdict)});
    }
    printTable(t, opts.csv, std::string("Future work 2: ") + sc.label);
  }
}

void crossRankStudy(TraceCache& cache, const BenchOptions& opts) {
  // Inter-process extension: merge the per-rank representative stores after
  // the intra-process pass and measure the extra compression and the extra
  // error it buys on SPMD workloads.
  TextTable t;
  t.header({"workload", "reps before", "reps after", "file % before", "file % after",
            "p90 err before", "p90 err after"});
  for (const std::string& name :
       {std::string("imbalance_at_mpi_barrier"), std::string("NtoN_32"),
        std::string("sweep3d_8p")}) {
    const eval::PreparedTrace& prepared = cache.get(name);
    auto policy = core::makeDefaultPolicy(core::Method::kAvgWave);
    const core::ReductionResult res =
        core::reduceTrace(prepared.segmented, prepared.trace.names(), *policy);
    const double errBefore = eval::approximationDistance(
        prepared.segmented, core::reconstruct(res.reduced));

    core::AbsDiffPolicy merge(500);
    core::MergeStats stats;
    const core::MergedReducedTrace merged =
        core::mergeAcrossRanks(res.reduced, merge, &stats);
    const double errAfter = eval::approximationDistance(
        prepared.segmented, core::reconstructMerged(merged));

    t.row({name, std::to_string(stats.inputRepresentatives),
           std::to_string(stats.mergedRepresentatives),
           fmtF(100.0 * reducedTraceSize(res.reduced) / prepared.fullBytes, 2),
           fmtF(100.0 * core::mergedTraceSize(merged) / prepared.fullBytes, 2),
           fmtF(errBefore, 1), fmtF(errAfter, 1)});
  }
  printTable(t, opts.csv,
             "Extension: cross-rank representative merging (avgWave intra-process "
             "+ absDiff@500 inter-process)");
}

}  // namespace

int main(int argc, char** argv) {
  const BenchOptions opts = BenchOptions::parse(argc, argv);
  TraceCache cache(opts.workload);
  samplingStudy(cache, opts);
  halo2dStudy(opts);
  crossRankStudy(cache, opts);
  return 0;
}
