// Fig. 8 reproduction: "KOJAK Performance Trends for 1to1r_1024 for Each
// Method at Default Thresholds".
//
// Per-rank severity charts for MPI_Ssend ("Late Receiver"), MPI_Recv
// ("Late Sender") and do_work (execution time) on the 1to1r_1024
// interference benchmark.
//
// Paper shape to check against: Manhattan, Euclidean and avgWave best,
// followed by relDiff and haarWave; absDiff amplifies iteration variations;
// iter_avg smooths them away.
#include "analysis/render.hpp"
#include "bench_common.hpp"

using namespace tracered;
using namespace tracered::bench;

int main(int argc, char** argv) {
  const BenchOptions opts = BenchOptions::parse(argc, argv);
  TraceCache cache(opts.workload);
  const eval::PreparedTrace& prepared = cache.get("1to1r_1024");

  const std::vector<analysis::ChartRow> rows = {
      {analysis::Metric::kLateReceiver, "MPI_Ssend"},
      {analysis::Metric::kLateSender, "MPI_Recv"},
      {analysis::Metric::kExecutionTime, "do_work"},
  };

  std::printf("== Fig. 8: 1to1r_1024 trend charts ==\n");
  std::printf("(one digit per rank 0..31, scaled to the full trace's row max)\n\n");
  std::printf("%s", analysis::renderChart(prepared.fullCube, prepared.fullCube,
                                          prepared.trace.names(), rows, "no_loss")
                        .c_str());
  std::printf("\n");

  TextTable verdicts;
  verdicts.header({"method", "threshold", "verdict", "why"});
  for (core::Method m : core::allMethods()) {
    const eval::MethodEvaluation ev = eval::evaluateMethodDefault(prepared, m, &opts.executor());
    std::printf("%s", analysis::renderChart(ev.reducedCube, prepared.fullCube,
                                            prepared.trace.names(), rows,
                                            core::methodName(m))
                          .c_str());
    verdicts.row({core::methodName(m), fmtF(ev.threshold, 1),
                  analysis::verdictName(ev.trends.verdict), ev.trends.reason});
  }
  std::printf("\n");
  printTable(verdicts, opts.csv, "Fig. 8 verdicts (comparator, Sec. 4.3.4 guidelines)");
  return 0;
}
