// Shared helpers for the paper-artifact bench harnesses.
//
// Every harness accepts:
//   --scale <f>   iteration-count multiplier (default 1.0 = paper-size runs)
//   --seed <n>    workload seed (default 42)
//   --csv         additionally emit CSV blocks for plotting
// and prints aligned tables whose rows mirror the corresponding paper
// figure/table.
#pragma once

#include <cstdio>
#include <map>
#include <string>

#include "eval/evaluation.hpp"
#include "eval/workloads.hpp"
#include "util/cli.hpp"
#include "util/table.hpp"

namespace tracered::bench {

struct BenchOptions {
  eval::WorkloadOptions workload;
  bool csv = false;

  static BenchOptions parse(int argc, char** argv) {
    CliArgs args(argc, argv);
    BenchOptions opts;
    opts.workload.scale = args.getDouble("scale", 1.0);
    opts.workload.seed = static_cast<std::uint64_t>(args.getInt("seed", 42));
    opts.csv = args.getBool("csv", false);
    return opts;
  }
};

/// Per-run cache so a harness evaluating many methods on one workload only
/// generates and prepares each trace once.
class TraceCache {
 public:
  explicit TraceCache(const eval::WorkloadOptions& opts) : opts_(opts) {}

  const eval::PreparedTrace& get(const std::string& name) {
    auto it = cache_.find(name);
    if (it == cache_.end()) {
      std::fprintf(stderr, "[gen] %s ...\n", name.c_str());
      it = cache_.emplace(name, eval::prepare(eval::runWorkload(name, opts_))).first;
    }
    return it->second;
  }

 private:
  eval::WorkloadOptions opts_;
  std::map<std::string, eval::PreparedTrace> cache_;
};

inline void printTable(const TextTable& t, bool csv, const std::string& title) {
  std::printf("== %s ==\n%s\n", title.c_str(), t.str().c_str());
  if (csv) std::printf("-- csv: %s --\n%s\n", title.c_str(), t.csv().c_str());
}

}  // namespace tracered::bench
