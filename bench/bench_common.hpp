// Shared helpers for the paper-artifact bench harnesses.
//
// Every harness accepts:
//   --scale <f>    iteration-count multiplier (default 1.0 = paper-size runs)
//   --seed <n>     workload seed (default 42)
//   --csv          additionally emit CSV blocks for plotting
//   --threads <n>  reduction worker threads (0 = hardware concurrency,
//                  1 = serial; never changes any number, only the wall clock)
// and prints aligned tables whose rows mirror the corresponding paper
// figure/table. Harnesses shard every reduction through one shared
// PooledExecutor (see executor()), so a whole 9-method x 6-threshold sweep
// spawns workers once instead of per reduction.
#pragma once

#include <cstdio>
#include <cstdlib>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "eval/evaluation.hpp"
#include "eval/workloads.hpp"
#include "util/cli.hpp"
#include "util/executor.hpp"
#include "util/table.hpp"

namespace tracered::bench {

struct BenchOptions {
  eval::WorkloadOptions workload;
  bool csv = false;
  int threads = 0;  ///< reduction executor width; 0 = hardware concurrency

  /// Parses the common harness flags. Harnesses with their own flags list
  /// them in `extraKnown` and read their values through args() — argv is
  /// tokenized exactly once, with one set of boolean-flag rules; anything
  /// unknown is rejected with a did-you-mean suggestion (exit 2) instead of
  /// being silently ignored.
  static BenchOptions parse(int argc, char** argv,
                            const std::vector<std::string>& extraKnown = {}) {
    CliArgs args(argc, argv, /*booleanFlags=*/{"csv"});
    std::vector<std::string> known = {"scale", "seed", "csv", "threads"};
    known.insert(known.end(), extraKnown.begin(), extraKnown.end());
    rejectUnknownFlags(args, known);
    BenchOptions opts;
    try {
      opts.workload.scale = args.getDouble("scale", 1.0);
      opts.workload.seed = static_cast<std::uint64_t>(args.getInt("seed", 42));
      opts.csv = args.getBool("csv", false);
      opts.threads = static_cast<int>(args.getInt("threads", 0));
      // A zero/negative/NaN scale must be an exit-2 usage error here, not an
      // uncaught invalid_argument from runWorkload deep inside the harness.
      eval::validateWorkloadOptions(opts.workload);
    } catch (const std::invalid_argument& e) {  // UsageError included
      usageExit(args, e.what());
    }
    opts.args_.emplace(std::move(args));
    return opts;
  }

  /// The validated command line parse() built, for harness-specific flags.
  const CliArgs& args() const { return *args_; }

  /// The harness-wide executor: one pool, lazily started, reused by every
  /// reduction of the run. Valid until the options object dies (harnesses
  /// keep it alive in main()).
  util::PooledExecutor& executor() const {
    if (!executor_) executor_ = std::make_unique<util::PooledExecutor>(threads);
    return *executor_;
  }

 private:
  std::optional<CliArgs> args_;
  mutable std::unique_ptr<util::PooledExecutor> executor_;
};

/// Per-run cache so a harness evaluating many methods on one workload only
/// generates and prepares each trace once.
class TraceCache {
 public:
  explicit TraceCache(const eval::WorkloadOptions& opts) : opts_(opts) {}

  const eval::PreparedTrace& get(const std::string& name) {
    auto it = cache_.find(name);
    if (it == cache_.end()) {
      std::fprintf(stderr, "[gen] %s ...\n", name.c_str());
      it = cache_.emplace(name, eval::prepare(eval::runWorkload(name, opts_))).first;
    }
    return it->second;
  }

 private:
  eval::WorkloadOptions opts_;
  std::map<std::string, eval::PreparedTrace> cache_;
};

inline void printTable(const TextTable& t, bool csv, const std::string& title) {
  std::printf("== %s ==\n%s\n", title.c_str(), t.str().c_str());
  if (csv) std::printf("-- csv: %s --\n%s\n", title.c_str(), t.csv().c_str());
}

}  // namespace tracered::bench
