// Fig. 6 reproduction: "Approximation Distance Results for All Methods at
// Default Thresholds".
//
// Per program and method: the 90th-percentile absolute timestamp error (µs)
// between the reconstructed and original traces.
//
// Paper shape to check against: relDiff/absDiff lowest; iter_k and iter_avg
// worst on irregular programs and on sweep3d (behaviour not captured by the
// retained iterations); Minkowski/wavelet methods the highest on the regular
// benchmarks.
#include "bench_common.hpp"

using namespace tracered;
using namespace tracered::bench;

int main(int argc, char** argv) {
  const BenchOptions opts = BenchOptions::parse(argc, argv);
  TraceCache cache(opts.workload);

  TextTable t;
  std::vector<std::string> header = {"program"};
  for (core::Method m : core::allMethods()) header.push_back(core::methodName(m));
  t.header(header);

  for (const std::string& name : eval::allWorkloads()) {
    const eval::PreparedTrace& prepared = cache.get(name);
    std::vector<std::string> row = {name};
    for (core::Method m : core::allMethods()) {
      const eval::MethodEvaluation ev = eval::evaluateMethodDefault(prepared, m, &opts.executor());
      row.push_back(fmtF(ev.approxDistanceUs, 1));
    }
    t.row(std::move(row));
  }
  printTable(t, opts.csv, "Fig. 6: approximation distance (p90 |Δt|, µs)");
  return 0;
}
