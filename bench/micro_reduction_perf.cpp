// google-benchmark microbenches for the core library: per-candidate cost of
// each similarity test, reducer throughput, wavelet transform speed, trace
// (de)serialization. These quantify the practical cost of each method — the
// paper's methods differ not only in quality but also in the work an online
// reducer would do per segment.
#include <benchmark/benchmark.h>

#include "core/methods.hpp"
#include "core/reducer.hpp"
#include "eval/workloads.hpp"
#include "trace/segmenter.hpp"
#include "trace/trace_io.hpp"
#include "wavelet/wavelet.hpp"

namespace {

using namespace tracered;

/// Lazily built shared workload (late_sender at reduced scale).
struct Fixture {
  Trace trace;
  SegmentedTrace segmented;

  Fixture() {
    eval::WorkloadOptions opts;
    opts.scale = 0.3;
    trace = eval::runWorkload("late_sender", opts);
    segmented = segmentTrace(trace);
  }
};

const Fixture& fix() {
  static Fixture f;
  return f;
}

void BM_Reduce(benchmark::State& state, core::Method method) {
  const Fixture& f = fix();
  const double threshold = core::defaultThreshold(method);
  std::size_t segments = 0;
  for (auto _ : state) {
    auto policy = core::makePolicy(method, threshold);
    const core::ReductionResult res =
        core::reduceTrace(f.segmented, f.trace.names(), *policy);
    benchmark::DoNotOptimize(res.stats.matches);
    segments += res.stats.totalSegments;
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(segments));
}

void BM_Segment(benchmark::State& state) {
  const Fixture& f = fix();
  for (auto _ : state) {
    const SegmentedTrace st = segmentTrace(f.trace);
    benchmark::DoNotOptimize(st.totalSegments());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(f.trace.totalRecords()));
}

void BM_SerializeFull(benchmark::State& state) {
  const Fixture& f = fix();
  for (auto _ : state) {
    const auto bytes = serializeFullTrace(f.trace);
    benchmark::DoNotOptimize(bytes.size());
  }
}

void BM_WaveletTransform(benchmark::State& state) {
  std::vector<double> v(static_cast<std::size_t>(state.range(0)));
  for (std::size_t i = 0; i < v.size(); ++i) v[i] = static_cast<double>(i * 37 % 1000);
  for (auto _ : state) {
    auto t = wavelet::avgTransform(v);
    benchmark::DoNotOptimize(t.data());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          state.range(0));
}

}  // namespace

BENCHMARK_CAPTURE(BM_Reduce, relDiff, tracered::core::Method::kRelDiff);
BENCHMARK_CAPTURE(BM_Reduce, absDiff, tracered::core::Method::kAbsDiff);
BENCHMARK_CAPTURE(BM_Reduce, Manhattan, tracered::core::Method::kManhattan);
BENCHMARK_CAPTURE(BM_Reduce, Euclidean, tracered::core::Method::kEuclidean);
BENCHMARK_CAPTURE(BM_Reduce, Chebyshev, tracered::core::Method::kChebyshev);
BENCHMARK_CAPTURE(BM_Reduce, iter_k, tracered::core::Method::kIterK);
BENCHMARK_CAPTURE(BM_Reduce, avgWave, tracered::core::Method::kAvgWave);
BENCHMARK_CAPTURE(BM_Reduce, haarWave, tracered::core::Method::kHaarWave);
BENCHMARK_CAPTURE(BM_Reduce, iter_avg, tracered::core::Method::kIterAvg);
BENCHMARK(BM_Segment);
BENCHMARK(BM_SerializeFull);
BENCHMARK(BM_WaveletTransform)->Arg(8)->Arg(64)->Arg(512);
