// google-benchmark microbenches for the core library: per-candidate cost of
// each similarity test, reducer throughput, wavelet transform speed, trace
// (de)serialization. These quantify the practical cost of each method — the
// paper's methods differ not only in quality but also in the work an online
// reducer would do per segment.
//
// The custom main() additionally runs two JSON studies, printed as one
// machine-readable line per configuration to stdout before the
// google-benchmark output, so successive PRs can append to a perf
// trajectory:
//
//   * rank-scaling (plain invocation or --rank-scaling): sweep3d_32p,
//     32 ranks, every method: serial, per-call-pool sharding, and sharding
//     through one shared PooledExecutor — the pooled column shows what pool
//     reuse buys over paying spawn/join per call.
//       {"bench":"rank_scaling","workload":"sweep3d_32p","method":...}
//   * matching (plain invocation or --matching, also written to
//     BENCH_matching.json / --matching-out): every method across all three
//     acceleration tiers — the literal uncached Sec. 3.1 loop
//     (AccelerationTier::kOff), the feature-cached + norm-pruned scan
//     (kCached), and the per-bucket match index (kIndexed, the default) —
//     verifying that all three reduce bit-identically and reporting the
//     hot-loop instrumentation of each:
//       {"bench":"matching","method":...,"ms_base":...,"ms_cached":...,
//        "speedup_cached":...,"ms_indexed":...,"speedup_indexed":...,
//        "comparisons":...,"pruned":...,"prune_rate":...,
//        "index_visited":...,"index_pruned":...,"index_prune_rate":...,
//        "pivot_dist_evals":...,"exact_evals":...}
//     Two fixtures per run: the main one (late_sender small / sweep3d_32p
//     full) plus scenario:multi_region — the index's worst-case adversary
//     (many near-identical representatives per bucket, where the uncached
//     loop goes quadratic). --small swaps in the reduced-scale fixtures
//     (the ctest / CI smoke configuration); any identity mismatch on any
//     row exits nonzero.
#include <benchmark/benchmark.h>

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <functional>
#include <string>
#include <string_view>

#include "core/methods.hpp"
#include "core/reducer.hpp"
#include "core/reduction_config.hpp"
#include "eval/workloads.hpp"
#include "trace/segmenter.hpp"
#include "trace/trace_io.hpp"
#include "util/executor.hpp"
#include "util/thread_pool.hpp"
#include "wavelet/wavelet.hpp"

namespace {

using namespace tracered;

/// Lazily built shared workload (late_sender at reduced scale).
struct Fixture {
  Trace trace;
  SegmentedTrace segmented;

  Fixture() {
    eval::WorkloadOptions opts;
    opts.scale = 0.3;
    trace = eval::runWorkload("late_sender", opts);
    segmented = segmentTrace(trace);
  }
};

const Fixture& fix() {
  static Fixture f;
  return f;
}

/// Wide fixture for rank-scaling runs: sweep3d on 32 ranks.
struct WideFixture {
  Trace trace;
  SegmentedTrace segmented;

  WideFixture() {
    eval::WorkloadOptions opts;
    opts.scale = 0.25;
    trace = eval::runWorkload("sweep3d_32p", opts);
    segmented = segmentTrace(trace);
  }
};

const WideFixture& wide() {
  static WideFixture f;
  return f;
}

/// The matching study's adversarial fixture: scenario:multi_region piles
/// many near-identical segments into the same signature buckets, so the
/// uncached Sec. 3.1 loop degrades toward quadratic — the case the match
/// index exists for.
struct MultiRegionFixture {
  Trace trace;
  SegmentedTrace segmented;

  explicit MultiRegionFixture(double scale) {
    eval::WorkloadOptions opts;
    opts.scale = scale;
    trace = eval::runWorkload("scenario:multi_region", opts);
    segmented = segmentTrace(trace);
  }
};

const MultiRegionFixture& multiRegionSmall() {
  static MultiRegionFixture f(0.4);
  return f;
}

const MultiRegionFixture& multiRegionFull() {
  static MultiRegionFixture f(1.0);
  return f;
}

void BM_Reduce(benchmark::State& state, core::Method method) {
  const Fixture& f = fix();
  const core::ReductionConfig config = core::ReductionConfig::defaults(method);
  std::size_t segments = 0;
  for (auto _ : state) {
    auto policy = config.makePolicy();
    const core::ReductionResult res =
        core::reduceTrace(f.segmented, f.trace.names(), *policy);
    benchmark::DoNotOptimize(res.stats.matches);
    segments += res.stats.totalSegments;
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(segments));
}

/// Rank-sharded reduction over the 32-rank fixture, one pool per call
/// (the compatibility cost model); range(0) = threads.
void BM_ReduceParallel(benchmark::State& state, core::Method method) {
  const WideFixture& f = wide();
  core::ReductionConfig config = core::ReductionConfig::defaults(method);
  config.numThreads = static_cast<int>(state.range(0));
  std::size_t segments = 0;
  for (auto _ : state) {
    const core::ReductionResult res =
        core::reduceTrace(f.segmented, f.trace.names(), config);
    benchmark::DoNotOptimize(res.stats.matches);
    segments += res.stats.totalSegments;
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(segments));
}

/// Same sharding through one PooledExecutor reused across iterations — the
/// amortized path sweeps should use; range(0) = threads.
void BM_ReducePooled(benchmark::State& state, core::Method method) {
  const WideFixture& f = wide();
  util::PooledExecutor pool(static_cast<int>(state.range(0)));
  const core::ReductionConfig config =
      core::ReductionConfig::defaults(method).withExecutor(pool);
  std::size_t segments = 0;
  for (auto _ : state) {
    const core::ReductionResult res =
        core::reduceTrace(f.segmented, f.trace.names(), config);
    benchmark::DoNotOptimize(res.stats.matches);
    segments += res.stats.totalSegments;
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(segments));
}

void BM_Segment(benchmark::State& state) {
  const Fixture& f = fix();
  for (auto _ : state) {
    const SegmentedTrace st = segmentTrace(f.trace);
    benchmark::DoNotOptimize(st.totalSegments());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(f.trace.totalRecords()));
}

void BM_SerializeFull(benchmark::State& state) {
  const Fixture& f = fix();
  for (auto _ : state) {
    const auto bytes = serializeFullTrace(f.trace);
    benchmark::DoNotOptimize(bytes.size());
  }
}

void BM_WaveletTransform(benchmark::State& state) {
  std::vector<double> v(static_cast<std::size_t>(state.range(0)));
  for (std::size_t i = 0; i < v.size(); ++i) v[i] = static_cast<double>(i * 37 % 1000);
  for (auto _ : state) {
    auto t = wavelet::avgTransform(v);
    benchmark::DoNotOptimize(t.data());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          state.range(0));
}

/// Wall-clock of one reduction under `config`, best of `reps`.
double reduceMillis(const WideFixture& f, const core::ReductionConfig& config,
                    int reps) {
  double best = 1e300;
  for (int r = 0; r < reps; ++r) {
    const auto t0 = std::chrono::steady_clock::now();
    const core::ReductionResult res =
        core::reduceTrace(f.segmented, f.trace.names(), config);
    const auto t1 = std::chrono::steady_clock::now();
    benchmark::DoNotOptimize(res.stats.matches);
    const double ms = std::chrono::duration<double, std::milli>(t1 - t0).count();
    if (ms < best) best = ms;
  }
  return best;
}

/// The rank-scaling study: serial vs per-call-pool vs shared-pool sharding
/// for every method, one JSON line per method. ms_parallel pays ThreadPool
/// spawn/join inside every call; ms_pooled reuses one PooledExecutor across
/// all calls, so pool_amortization = ms_parallel / ms_pooled is the worker-
/// churn overhead the executor redesign removes. The perf trajectory future
/// PRs extend.
void runRankScalingStudy() {
  const WideFixture& f = wide();
  // Report the thread count the driver actually uses (clamped to the rank
  // count), not raw hardware concurrency.
  const int hw = static_cast<int>(util::resolveThreads(0, f.segmented.ranks.size()));
  const int reps = 3;
  std::printf("{\"bench\":\"rank_scaling\",\"workload\":\"sweep3d_32p\","
              "\"ranks\":%zu,\"segments\":%zu,\"hw_threads\":%d}\n",
              f.segmented.ranks.size(), f.segmented.totalSegments(), hw);
  util::PooledExecutor pool(hw);  // shared by every ms_pooled measurement
  for (core::Method m : core::allMethods()) {
    core::ReductionConfig serialCfg = core::ReductionConfig::defaults(m);
    core::ReductionConfig perCallCfg = serialCfg;
    perCallCfg.numThreads = hw;
    const double t1 = reduceMillis(f, serialCfg, reps);
    const double tn = reduceMillis(f, perCallCfg, reps);
    const double tp = reduceMillis(f, serialCfg.withExecutor(pool), reps);
    std::printf("{\"bench\":\"rank_scaling\",\"workload\":\"sweep3d_32p\","
                "\"method\":\"%s\",\"threshold\":%g,\"threads_serial\":1,"
                "\"ms_serial\":%.3f,\"threads_parallel\":%d,\"ms_parallel\":%.3f,"
                "\"speedup\":%.3f,\"ms_pooled\":%.3f,\"speedup_pooled\":%.3f,"
                "\"pool_amortization\":%.3f}\n",
                core::methodName(m), core::defaultThreshold(m), t1, hw, tn,
                tn > 0 ? t1 / tn : 0.0, tp, tp > 0 ? t1 / tp : 0.0,
                tp > 0 ? tn / tp : 0.0);
  }
  std::fflush(stdout);
}

/// Best-of-`reps` wall clock of `run`; the last run's result lands in *last.
double bestMillisOf(int reps, const std::function<core::ReductionResult()>& run,
                    core::ReductionResult* last) {
  double best = 1e300;
  for (int r = 0; r < reps; ++r) {
    const auto t0 = std::chrono::steady_clock::now();
    core::ReductionResult res = run();
    const auto t1 = std::chrono::steady_clock::now();
    benchmark::DoNotOptimize(res.stats.matches);
    const double ms = std::chrono::duration<double, std::milli>(t1 - t0).count();
    if (ms < best) best = ms;
    if (last != nullptr && r == reps - 1) *last = std::move(res);
  }
  return best;
}

bool sameReduction(const core::ReductionResult& a, const core::ReductionResult& b) {
  return a.stats == b.stats && a.reduced.ranks == b.reduced.ranks;
}

/// The matching study: the three acceleration tiers (uncached Sec. 3.1
/// loop / feature-cached + norm-pruned scan / per-bucket match index) per
/// method on the main fixture AND the adversarial scenario:multi_region
/// fixture, verifying that all tiers reduce bit-identically. One JSON line
/// per (workload, method) to stdout AND `outPath` — the BENCH_matching.json
/// perf trajectory. Returns false on any identity mismatch (which would
/// mean a fast path changed semantics).
bool runMatchingStudy(bool small, const char* outPath, int reps) {
  struct Entry {
    const char* workload;
    const Trace* trace;
    const SegmentedTrace* segmented;
  };
  const Entry entries[] = {
      small ? Entry{"late_sender", &fix().trace, &fix().segmented}
            : Entry{"sweep3d_32p", &wide().trace, &wide().segmented},
      small ? Entry{"scenario:multi_region", &multiRegionSmall().trace,
                    &multiRegionSmall().segmented}
            : Entry{"scenario:multi_region", &multiRegionFull().trace,
                    &multiRegionFull().segmented},
  };

  // An unwritable cwd only loses the archived copy — the study (and its
  // identity verdict, the reason this function can fail) still runs and
  // prints to stdout.
  FILE* out = std::fopen(outPath, "w");
  if (out == nullptr)
    std::fprintf(stderr, "micro_reduction_perf: cannot write %s; printing to stdout only\n",
                 outPath);
  auto emit = [&](const char* line) {
    std::fputs(line, stdout);
    if (out != nullptr) std::fputs(line, out);
  };

  bool ok = true;
  char line[768];
  for (const Entry& e : entries) {
    std::snprintf(line, sizeof line,
                  "{\"bench\":\"matching\",\"workload\":\"%s\",\"ranks\":%zu,"
                  "\"segments\":%zu,\"reps\":%d}\n",
                  e.workload, e.segmented->ranks.size(),
                  e.segmented->totalSegments(), reps);
    emit(line);

    for (core::Method m : core::allMethods()) {
      const auto runTier = [&](core::AccelerationTier tier,
                               core::ReductionResult* res) {
        return bestMillisOf(
            reps,
            [&] {
              auto policy = core::makeDefaultPolicy(m);
              policy->setAccelerationTier(tier);
              return core::reduceTrace(*e.segmented, e.trace->names(), *policy);
            },
            res);
      };
      core::ReductionResult base, cached, indexed;
      const double msBase = runTier(core::AccelerationTier::kOff, &base);
      const double msCached = runTier(core::AccelerationTier::kCached, &cached);
      const double msIndexed = runTier(core::AccelerationTier::kIndexed, &indexed);
      const bool identical =
          sameReduction(base, cached) && sameReduction(base, indexed);
      ok = ok && identical;
      // comparisons/pruned/prune_rate stay the cached tier's numbers (the
      // trajectory the earlier PRs established); the index_* columns and
      // exact_evals describe the indexed tier. exact_evals vs the baseline's
      // comparisons is the "exact distance evaluations saved" headline.
      std::snprintf(
          line, sizeof line,
          "{\"bench\":\"matching\",\"workload\":\"%s\",\"method\":\"%s\","
          "\"threshold\":%g,\"ms_base\":%.3f,\"ms_cached\":%.3f,"
          "\"speedup_cached\":%.3f,\"ms_indexed\":%.3f,\"speedup_indexed\":%.3f,"
          "\"comparisons\":%zu,\"pruned\":%zu,\"prune_rate\":%.4f,"
          "\"index_visited\":%zu,\"index_pruned\":%zu,\"index_prune_rate\":%.4f,"
          "\"pivot_dist_evals\":%zu,\"exact_evals\":%zu,\"stored\":%zu,"
          "\"identical\":%s}\n",
          e.workload, core::methodName(m), core::defaultThreshold(m), msBase,
          msCached, msCached > 0 ? msBase / msCached : 0.0, msIndexed,
          msIndexed > 0 ? msBase / msIndexed : 0.0, cached.counters.comparisons,
          cached.counters.pruned, cached.counters.pruneRate(),
          indexed.counters.indexVisited, indexed.counters.indexPruned,
          indexed.counters.indexPruneRate(), indexed.counters.pivotDistEvals,
          indexed.counters.exactEvals(), indexed.stats.storedSegments,
          identical ? "true" : "false");
      emit(line);
      if (!identical)
        std::fprintf(stderr,
                     "micro_reduction_perf: %s/%s: accelerated result differs "
                     "from the uncached baseline!\n",
                     e.workload, core::methodName(m));
    }
  }
  if (out != nullptr) std::fclose(out);
  std::fflush(stdout);
  return ok;
}

}  // namespace

BENCHMARK_CAPTURE(BM_Reduce, relDiff, tracered::core::Method::kRelDiff);
BENCHMARK_CAPTURE(BM_Reduce, absDiff, tracered::core::Method::kAbsDiff);
BENCHMARK_CAPTURE(BM_Reduce, Manhattan, tracered::core::Method::kManhattan);
BENCHMARK_CAPTURE(BM_Reduce, Euclidean, tracered::core::Method::kEuclidean);
BENCHMARK_CAPTURE(BM_Reduce, Chebyshev, tracered::core::Method::kChebyshev);
BENCHMARK_CAPTURE(BM_Reduce, iter_k, tracered::core::Method::kIterK);
BENCHMARK_CAPTURE(BM_Reduce, avgWave, tracered::core::Method::kAvgWave);
BENCHMARK_CAPTURE(BM_Reduce, haarWave, tracered::core::Method::kHaarWave);
BENCHMARK_CAPTURE(BM_Reduce, iter_avg, tracered::core::Method::kIterAvg);
BENCHMARK_CAPTURE(BM_ReduceParallel, avgWave, tracered::core::Method::kAvgWave)
    ->Arg(1)->Arg(2)->Arg(4)->Arg(8);
BENCHMARK_CAPTURE(BM_ReduceParallel, Euclidean, tracered::core::Method::kEuclidean)
    ->Arg(1)->Arg(2)->Arg(4)->Arg(8);
BENCHMARK_CAPTURE(BM_ReducePooled, avgWave, tracered::core::Method::kAvgWave)
    ->Arg(2)->Arg(4)->Arg(8);
BENCHMARK_CAPTURE(BM_ReducePooled, Euclidean, tracered::core::Method::kEuclidean)
    ->Arg(2)->Arg(4)->Arg(8);
BENCHMARK(BM_Segment);
BENCHMARK(BM_SerializeFull);
BENCHMARK(BM_WaveletTransform)->Arg(8)->Arg(64)->Arg(512);

int main(int argc, char** argv) {
  // The studies run on a plain invocation or with --rank-scaling /
  // --matching; benchmark tooling passing --benchmark_* flags gets an
  // unpolluted stdout stream. --small / --matching-reps / --matching-out
  // shape the matching study (the ctest + CI smoke step runs
  // `--matching --small --matching-reps 1`).
  bool rankScaling = argc == 1;
  bool matching = argc == 1;
  bool small = false;
  int matchingReps = 3;
  std::string matchingOut = "BENCH_matching.json";
  int keptArgc = 1;
  for (int i = 1; i < argc; ++i) {
    const std::string_view arg(argv[i]);
    if (arg == "--rank-scaling") {
      rankScaling = true;
    } else if (arg == "--matching") {
      matching = true;
    } else if (arg == "--small") {
      small = true;
    } else if (arg == "--matching-reps" && i + 1 < argc) {
      matchingReps = std::atoi(argv[++i]);
      if (matchingReps < 1) matchingReps = 1;
    } else if (arg == "--matching-out" && i + 1 < argc) {
      matchingOut = argv[++i];
    } else {
      argv[keptArgc++] = argv[i];
    }
  }
  argc = keptArgc;
  if (rankScaling) runRankScalingStudy();
  if (matching && !runMatchingStudy(small, matchingOut.c_str(), matchingReps))
    return 1;

  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
