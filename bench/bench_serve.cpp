// Serve-daemon soak study for the perf trajectory: spins a real `tracered
// serve` instance on a unix socket, streams traces at it from concurrent
// clients (each a full HELLO -> DATA* -> END -> STATS/RESULT round trip via
// the same reduceRemote() the CLI uses), verifies every reply byte-identical
// to the offline reduction, and appends one JSON line per (clients x
// payload) cell — throughput MB/s, p50/p99 round-trip ms, and the server's
// peak per-connection buffered bytes — to stdout AND an output file (append
// mode, so CI can accumulate the rows into the BENCH_matching.json
// trajectory artifact next to the matching and scenario studies').
//
//   bench_serve [--scale f] [--seed n] [--threads n] [--config m[@t]]
//               [--trips n] [--out file]
//
// The `bench_serve_smoke` ctest runs `--scale 0.1 --out BENCH_serve.json`
// (2 client levels x 1 payload); at --scale >= 0.5 the study widens to the
// full clients x payload grid.
#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <mutex>
#include <thread>
#include <vector>

#include "bench_common.hpp"
#include "core/reduction_session.hpp"
#include "serve/client.hpp"
#include "serve/server.hpp"
#include "trace/segmenter.hpp"
#include "trace/trace_io.hpp"

namespace tracered::bench {
namespace {

double percentile(const std::vector<double>& sorted, double p) {
  if (sorted.empty()) return 0.0;
  const std::size_t i = std::min(
      sorted.size() - 1, static_cast<std::size_t>(p * static_cast<double>(sorted.size())));
  return sorted[i];
}

struct Payload {
  std::string workload;
  std::vector<std::uint8_t> bytes;     // serialized full trace (the wire payload)
  std::vector<std::uint8_t> expected;  // offline-reduced TRR bytes
};

int run(int argc, char** argv) {
  const BenchOptions opts = BenchOptions::parse(argc, argv, {"config", "out", "trips"});
  core::ReductionConfig config =
      core::ReductionConfig::defaults(core::Method::kAvgWave);
  if (opts.args().has("config")) {
    try {
      config = core::ReductionConfig::fromName(opts.args().get("config"));
    } catch (const std::invalid_argument& e) {
      usageExit(opts.args(), e.what());
    }
  }
  const std::string outPath = opts.args().get("out", "BENCH_serve.json");
  const int trips = static_cast<int>(opts.args().getInt("trips", 3));
  const bool full = opts.workload.scale >= 0.5;

  const std::vector<std::size_t> clientLevels =
      full ? std::vector<std::size_t>{1, 4, 8, 16} : std::vector<std::size_t>{1, 4};
  const std::vector<std::string> payloadWorkloads =
      full ? std::vector<std::string>{"late_sender", "sweep3d_8p"}
           : std::vector<std::string>{"late_sender"};

  // Generate each payload once and pre-compute its offline reduction — the
  // correctness oracle every concurrent reply is compared against.
  std::vector<Payload> payloads;
  for (const std::string& name : payloadWorkloads) {
    Payload p;
    p.workload = name;
    const Trace trace = eval::runWorkload(name, opts.workload);
    p.bytes = serializeFullTrace(trace);
    core::ReductionSession session(trace.names(), config.withExecutor(opts.executor()));
    p.expected = serializeReducedTrace(session.reduce(segmentTrace(trace)).reduced);
    payloads.push_back(std::move(p));
  }

  FILE* out = std::fopen(outPath.c_str(), "a");
  if (out == nullptr)
    std::fprintf(stderr, "bench_serve: cannot write %s; printing to stdout only\n",
                 outPath.c_str());
  auto emit = [&](const char* line) {
    std::fputs(line, stdout);
    if (out != nullptr) std::fputs(line, out);
  };

  char line[512];
  std::snprintf(line, sizeof line,
                "{\"bench\":\"serve\",\"config\":\"%s\",\"scale\":%g,\"seed\":%llu,"
                "\"trips\":%d}\n",
                config.toString().c_str(), opts.workload.scale,
                static_cast<unsigned long long>(opts.workload.seed), trips);
  emit(line);

  int failures = 0;
  for (const Payload& payload : payloads) {
    for (const std::size_t clients : clientLevels) {
      // Fresh server per cell so peakConnBufferedBytes is the cell's own.
      serve::ServerOptions serverOptions;
      serverOptions.listenAddrs = {"unix:/tmp/tracered_bench_serve_" +
                                   std::to_string(::getpid()) + ".sock"};
      serverOptions.threads = opts.threads;
      serve::Server server(serverOptions);
      const std::string addr = server.boundAddresses().at(0);
      std::thread serverThread([&server] { server.run(); });

      std::mutex mu;
      std::vector<double> latenciesMs;
      int mismatches = 0;
      const auto cellStart = std::chrono::steady_clock::now();
      std::vector<std::thread> threads;
      threads.reserve(clients);
      for (std::size_t cl = 0; cl < clients; ++cl)
        threads.emplace_back([&] {
          for (int trip = 0; trip < trips; ++trip) {
            const auto t0 = std::chrono::steady_clock::now();
            const serve::RemoteReduceResult rr =
                serve::reduceRemote(addr, config.toString(), payload.bytes.data(),
                                    payload.bytes.size(), /*retryMs=*/2000);
            const double ms = std::chrono::duration<double, std::milli>(
                                  std::chrono::steady_clock::now() - t0)
                                  .count();
            std::lock_guard<std::mutex> lock(mu);
            latenciesMs.push_back(ms);
            if (rr.trrBytes != payload.expected) ++mismatches;
          }
        });
      for (std::thread& t : threads) t.join();
      const double wallS = std::chrono::duration<double>(
                               std::chrono::steady_clock::now() - cellStart)
                               .count();
      server.stop();
      serverThread.join();
      const serve::Server::Metrics m = server.metrics();

      std::sort(latenciesMs.begin(), latenciesMs.end());
      const double streamedMb = static_cast<double>(payload.bytes.size()) *
                                static_cast<double>(clients) * trips / 1.0e6;
      if (mismatches > 0 || m.protocolErrors != 0) ++failures;
      std::snprintf(
          line, sizeof line,
          "{\"bench\":\"serve\",\"workload\":\"%s\",\"payload_bytes\":%zu,"
          "\"clients\":%zu,\"trips\":%d,\"mb_per_s\":%.2f,\"p50_ms\":%.2f,"
          "\"p99_ms\":%.2f,\"peak_conn_buffered_bytes\":%zu,"
          "\"traces_served\":%llu,\"mismatches\":%d,\"protocol_errors\":%llu}\n",
          payload.workload.c_str(), payload.bytes.size(), clients, trips,
          wallS > 0 ? streamedMb / wallS : 0.0, percentile(latenciesMs, 0.50),
          percentile(latenciesMs, 0.99), m.peakConnBufferedBytes,
          static_cast<unsigned long long>(m.tracesServed), mismatches,
          static_cast<unsigned long long>(m.protocolErrors));
      emit(line);
    }
  }
  if (out != nullptr) std::fclose(out);
  if (failures != 0) {
    std::fprintf(stderr, "bench_serve: %d cell(s) had mismatched or failed replies\n",
                 failures);
    return 1;
  }
  return 0;
}

}  // namespace
}  // namespace tracered::bench

int main(int argc, char** argv) { return tracered::bench::run(argc, argv); }
