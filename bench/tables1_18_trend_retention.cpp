// Tables 1-18 reproduction: "Retention of Performance Trends with Varying
// Thresholds" — one table per program (16 ATS benchmarks + sweep3d_8p +
// sweep3d_32p), rows = methods, columns = the paper's threshold sweep, cells
// = the comparator verdict (retained / degraded / lost).
//
// Ends with the Sec. 5.2.3 per-method score at default thresholds:
// "correctly diagnosed X of the 18 execution traces" (paper: avgWave /
// Manhattan / Euclidean 17, haarWave 16, relDiff 14, absDiff/Chebyshev 13,
// iter_k 12, iter_avg 6).
//
// Flags: --workload <name> restricts to one program.
#include "bench_common.hpp"

using namespace tracered;
using namespace tracered::bench;

namespace {

const char* shortVerdict(analysis::Verdict v) {
  switch (v) {
    case analysis::Verdict::kRetained: return "retained";
    case analysis::Verdict::kDegraded: return "DEGRADED";
    case analysis::Verdict::kLost: return "LOST";
  }
  return "?";
}

}  // namespace

int main(int argc, char** argv) {
  const BenchOptions opts = BenchOptions::parse(argc, argv, {"workload"});
  const std::string onlyWorkload = opts.args().get("workload", "");
  TraceCache cache(opts.workload);

  std::map<core::Method, int> correctAtDefault;
  int tableNo = 1;
  for (const std::string& name : eval::allWorkloads()) {
    if (!onlyWorkload.empty() && onlyWorkload != name) {
      ++tableNo;
      continue;
    }
    const eval::PreparedTrace& prepared = cache.get(name);

    TextTable t;
    t.header({"method", "t1", "t2", "t3", "t4", "t5", "t6", "@default"});
    for (core::Method m : core::allMethods()) {
      std::vector<std::string> row = {core::methodName(m)};
      const std::vector<double> thresholds = core::studyThresholds(m);
      for (std::size_t i = 0; i < 6; ++i) {
        if (i >= thresholds.size()) {
          row.push_back("-");
          continue;
        }
        const eval::MethodEvaluation ev = eval::evaluateMethod(
            prepared,
            {.method = m, .threshold = thresholds[i], .executor = &opts.executor()});
        row.push_back(shortVerdict(ev.trends.verdict));
      }
      const eval::MethodEvaluation def =
          eval::evaluateMethodDefault(prepared, m, &opts.executor());
      row.push_back(shortVerdict(def.trends.verdict));
      if (def.trends.verdict != analysis::Verdict::kLost) ++correctAtDefault[m];
      t.row(std::move(row));
    }
    printTable(t, opts.csv,
               "Table " + std::to_string(tableNo) + ": trend retention, " + name +
                   " (t1..t6 = the paper's threshold sweep per method)");
    ++tableNo;
  }

  if (onlyWorkload.empty()) {
    TextTable score;
    score.header({"method", "correct of 18 (default thresholds)"});
    for (core::Method m : core::allMethods())
      score.row({core::methodName(m), std::to_string(correctAtDefault[m])});
    printTable(score, opts.csv,
               "Sec. 5.2.3 score (paper: avgWave/Manhattan/Euclidean 17, haarWave 16, "
               "relDiff 14, absDiff/Chebyshev 13, iter_k 12, iter_avg 6)");
  }
  return 0;
}
