// Fig. 5 reproduction: "Percentage File Sizes and Degree of Matching".
//
// For every program (16 ATS benchmarks + sweep3d_8p + sweep3d_32p) and every
// similarity method at its paper-default threshold, prints the reduced trace
// file size as a percentage of the full trace and the degree of matching.
// Ends with the Sec. 5.2.1 average-file-size ranking.
//
// Paper shape to check against: iter_avg smallest everywhere; relDiff the
// largest files / lowest matching on the benchmarks; on sweep3d iter_k worst;
// Minkowski/wavelet methods nearly identical elsewhere.
#include <algorithm>

#include "bench_common.hpp"

using namespace tracered;
using namespace tracered::bench;

int main(int argc, char** argv) {
  const BenchOptions opts = BenchOptions::parse(argc, argv);
  TraceCache cache(opts.workload);

  TextTable sizes, matching;
  std::vector<std::string> header = {"program"};
  for (core::Method m : core::allMethods()) header.push_back(core::methodName(m));
  sizes.header(header);
  matching.header(header);

  std::map<core::Method, double> pctSum;
  for (const std::string& name : eval::allWorkloads()) {
    const eval::PreparedTrace& prepared = cache.get(name);
    std::vector<std::string> sizeRow = {name};
    std::vector<std::string> matchRow = {name};
    for (core::Method m : core::allMethods()) {
      const eval::MethodEvaluation ev = eval::evaluateMethodDefault(prepared, m, &opts.executor());
      sizeRow.push_back(fmtF(ev.filePct, 2));
      matchRow.push_back(fmtF(ev.degreeOfMatching, 3));
      pctSum[m] += ev.filePct;
    }
    sizes.row(std::move(sizeRow));
    matching.row(std::move(matchRow));
  }

  printTable(sizes, opts.csv, "Fig. 5a: reduced trace size, % of full trace file");
  printTable(matching, opts.csv, "Fig. 5b: degree of matching");

  // Sec. 5.2.1 ranking by average file size across all programs.
  std::vector<std::pair<double, core::Method>> ranking;
  for (const auto& [m, sum] : pctSum)
    ranking.emplace_back(sum / static_cast<double>(eval::allWorkloads().size()), m);
  std::sort(ranking.begin(), ranking.end());
  TextTable rank;
  rank.header({"rank", "method", "avg file %"});
  int i = 1;
  for (const auto& [avg, m] : ranking)
    rank.row({std::to_string(i++), core::methodName(m), fmtF(avg, 2)});
  printTable(rank, opts.csv,
             "Sec. 5.2.1: average-file-size ranking (paper: iter_avg, avgWave, "
             "haarWave, Chebyshev, absDiff, Manhattan, Euclidean, iter_k, relDiff)");
  return 0;
}
