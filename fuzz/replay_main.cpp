// Deterministic corpus replay driver — the compiler-agnostic leg of the fuzz
// layer (no libFuzzer involved). Registered as the fuzz_corpus_replay ctest
// over fuzz/corpus/regressions/, so every input that ever crashed a harness
// stays a permanent regression test even in plain gcc builds.
//
//   fuzz_replay <corpus-root>              replay <root>/<target>/* for every
//                                          registered target (sorted order)
//   fuzz_replay <corpus-root> <target>     one target's directory only
//   fuzz_replay --one <target> <file>...   replay specific files (the local
//                                          repro loop for a CI crash artifact)
#include <algorithm>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "fuzz/fuzz_targets.hpp"

namespace {

std::vector<std::uint8_t> readWhole(const std::filesystem::path& p) {
  std::ifstream f(p, std::ios::binary);
  if (!f) {
    std::fprintf(stderr, "fuzz_replay: cannot read %s\n", p.string().c_str());
    std::exit(2);
  }
  return std::vector<std::uint8_t>(std::istreambuf_iterator<char>(f),
                                   std::istreambuf_iterator<char>());
}

void replayFile(const tracered::fuzz::TargetInfo& target,
                const std::filesystem::path& p) {
  // Announce before running so a crash names its input in the output.
  std::printf("  %s: %s\n", target.name, p.filename().string().c_str());
  std::fflush(stdout);
  const std::vector<std::uint8_t> bytes = readWhole(p);
  target.fn(bytes.data(), bytes.size());
}

int usage() {
  std::fprintf(stderr,
               "usage: fuzz_replay <corpus-root> [target]\n"
               "       fuzz_replay --one <target> <file>...\n");
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  namespace fs = std::filesystem;
  using tracered::fuzz::allTargets;
  using tracered::fuzz::TargetInfo;

  if (argc >= 3 && std::strcmp(argv[1], "--one") == 0) {
    if (argc < 4) return usage();
    const tracered::fuzz::TargetFn fn = tracered::fuzz::targetByName(argv[2]);
    if (fn == nullptr) {
      std::fprintf(stderr, "fuzz_replay: unknown target '%s'\n", argv[2]);
      return 2;
    }
    const TargetInfo target{argv[2], fn};
    for (int i = 3; i < argc; ++i) replayFile(target, argv[i]);
    std::printf("replayed %d input(s) through %s: clean\n", argc - 3, argv[2]);
    return 0;
  }

  if (argc != 2 && argc != 3) return usage();
  const fs::path root = argv[1];
  const char* only = argc == 3 ? argv[2] : nullptr;
  if (only != nullptr && tracered::fuzz::targetByName(only) == nullptr) {
    std::fprintf(stderr, "fuzz_replay: unknown target '%s'\n", only);
    return 2;
  }

  std::size_t total = 0;
  for (const TargetInfo& target : allTargets()) {
    if (only != nullptr && std::strcmp(target.name, only) != 0) continue;
    const fs::path dir = root / target.name;
    std::vector<fs::path> files;
    if (fs::is_directory(dir))
      for (const auto& entry : fs::directory_iterator(dir))
        if (entry.is_regular_file()) files.push_back(entry.path());
    std::sort(files.begin(), files.end());
    std::printf("%s: %zu input(s)\n", target.name, files.size());
    for (const fs::path& p : files) replayFile(target, p);
    total += files.size();
  }
  if (total == 0) {
    std::fprintf(stderr, "fuzz_replay: no corpus inputs under %s\n",
                 root.string().c_str());
    return 1;
  }
  std::printf("replayed %zu input(s): clean\n", total);
  return 0;
}
