// libFuzzer entry point, compiled once per harness with
// -DTRACERED_FUZZ_TARGET=<name> (CMakeLists "fuzz" section). Clang-only:
// linked with -fsanitize=fuzzer.
#include <cstdio>
#include <cstdlib>

#include "fuzz/fuzz_targets.hpp"

#define TRACERED_STR2(x) #x
#define TRACERED_STR(x) TRACERED_STR2(x)

extern "C" int LLVMFuzzerTestOneInput(const std::uint8_t* data, std::size_t size) {
  static const tracered::fuzz::TargetFn fn = [] {
    const tracered::fuzz::TargetFn f =
        tracered::fuzz::targetByName(TRACERED_STR(TRACERED_FUZZ_TARGET));
    if (f == nullptr) {
      std::fprintf(stderr, "unknown fuzz target: %s\n", TRACERED_STR(TRACERED_FUZZ_TARGET));
      std::abort();
    }
    return f;
  }();
  return fn(data, size);
}
