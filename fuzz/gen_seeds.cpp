// Seed-corpus generator: writes one small, WELL-FORMED input per format into
// <out-dir>/<target>/, produced by the same golden-corpus generators the
// scenario_golden_test pins (fixed workload names, scale, seed — the output
// is deterministic). The fuzzers mutate from these; nothing here is a crash
// input (the committed crashers live in fuzz/corpus/regressions/).
//
//   fuzz_gen_seeds <out-dir>
#include <algorithm>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "core/cross_rank.hpp"
#include "core/reduction_config.hpp"
#include "core/reduction_session.hpp"
#include "eval/workloads.hpp"
#include "serve/protocol.hpp"
#include "trace/segmenter.hpp"
#include "trace/text_io.hpp"
#include "trace/trace_io.hpp"

namespace {

namespace fs = std::filesystem;
using namespace tracered;

void writeSeed(const fs::path& dir, const std::string& name,
               const std::vector<std::uint8_t>& bytes) {
  fs::create_directories(dir);
  const fs::path p = dir / name;
  std::ofstream f(p, std::ios::binary | std::ios::trunc);
  f.write(reinterpret_cast<const char*>(bytes.data()),
          static_cast<std::streamsize>(bytes.size()));
  if (!f) {
    std::fprintf(stderr, "fuzz_gen_seeds: cannot write %s\n", p.string().c_str());
    std::exit(1);
  }
  std::printf("%s (%zu bytes)\n", p.string().c_str(), bytes.size());
}

std::vector<std::uint8_t> strBytes(const std::string& s) {
  return std::vector<std::uint8_t>(s.begin(), s.end());
}

}  // namespace

int main(int argc, char** argv) {
  if (argc != 2) {
    std::fprintf(stderr, "usage: fuzz_gen_seeds <out-dir>\n");
    return 2;
  }
  const fs::path out = argv[1];

  // Tiny but structurally rich traces: a paper benchmark and a scenario
  // generator, at the golden corpus's seed.
  const eval::WorkloadOptions opts{/*scale=*/0.05, /*seed=*/42};
  const std::vector<std::string> workloads = {eval::allWorkloads().front(),
                                              "scenario:multi_region"};

  std::size_t i = 0;
  for (const std::string& name : workloads) {
    const Trace trace = eval::runWorkload(name, opts);
    const std::string tag = "seed_" + std::to_string(i++);

    // trace_file: TRF1 bytes and the text rendering (the reader sniffs both).
    writeSeed(out / "trace_file", tag + "_trf1.bin", serializeFullTrace(trace));
    writeSeed(out / "trace_file", tag + "_text.txt", strBytes(traceToText(trace)));
    writeSeed(out / "text", tag + ".txt", strBytes(traceToText(trace)));

    // trm1: reduce then cross-rank merge; also drop the TRR1 bytes (the
    // harness exercises both deserializers).
    const core::ReductionConfig config = core::ReductionConfig::fromName("avgWave@0.2");
    core::ReductionSession session(trace.names(), config);
    const ReducedTrace reduced = session.reduce(segmentTrace(trace)).reduced;
    writeSeed(out / "trm1", tag + "_trr1.bin", serializeReducedTrace(reduced));
    const core::MergeResult merge =
        core::mergeAcrossRanks(reduced, core::MergeOptions{config, /*shardRanks=*/4});
    writeSeed(out / "trm1", tag + "_trm1.bin", serializeMergedTrace(merge.merged));

    // analyze: the severity-cube target mutates from the same TRR1 bytes
    // (its accept set is the TRR1 deserializer's; the interesting depth is
    // what reconstruct->analyze does after acceptance).
    writeSeed(out / "analyze", tag + "_trr1.bin", serializeReducedTrace(reduced));

    // serve: a complete, well-formed client conversation (HELLO, the TRF1
    // bytes as DATA frames, END) — exactly what a connection's input ring
    // sees; the feeder leg of the harness reads the raw DATA payload too.
    std::vector<std::uint8_t> convo;
    serve::appendFrame(convo, serve::FrameType::kHello,
                       serve::encodeHello({serve::kProtocolVersion, "avgWave@0.2"}));
    const std::vector<std::uint8_t> trf1 = serializeFullTrace(trace);
    for (std::size_t off = 0; off < trf1.size(); off += serve::kMaxFramePayload) {
      const std::size_t n = std::min(serve::kMaxFramePayload, trf1.size() - off);
      serve::appendFrame(convo, serve::FrameType::kData, trf1.data() + off, n);
    }
    serve::appendFrame(convo, serve::FrameType::kEnd, nullptr, 0);
    writeSeed(out / "serve", tag + "_session.bin", convo);
  }

  // serve: the server->client frames too.
  std::vector<std::uint8_t> replies;
  serve::appendFrame(replies, serve::FrameType::kWelcome,
                     serve::encodeWelcome({serve::kProtocolVersion, 1 << 16}));
  serve::appendFrame(replies, serve::FrameType::kAck, serve::encodeAck(4096));
  serve::appendFrame(replies, serve::FrameType::kStats,
                     serve::encodeStats({{"segments", "12"}, {"stored", "3"}}));
  serve::appendFrame(replies, serve::FrameType::kError, serve::encodeError("bad config"));
  writeSeed(out / "serve", "seed_replies.bin", replies);

  // reduction_config: one spelling per accepted shape.
  writeSeed(out / "reduction_config", "seed_wave.txt", strBytes("avgWave@0.2"));
  writeSeed(out / "reduction_config", "seed_iter_k.txt", strBytes("iter_k@3"));
  writeSeed(out / "reduction_config", "seed_default.txt", strBytes("Euclidean"));
  return 0;
}
