#include "fuzz/fuzz_targets.hpp"

#include <cstring>

namespace tracered::fuzz {

const std::vector<TargetInfo>& allTargets() {
  static const std::vector<TargetInfo> targets = {
      {"trace_file", &runTraceFile},
      {"trm1", &runTrm1},
      {"text", &runText},
      {"serve", &runServe},
      {"reduction_config", &runReductionConfig},
      {"analyze", &runAnalyze},
  };
  return targets;
}

TargetFn targetByName(const char* name) {
  for (const TargetInfo& t : allTargets())
    if (std::strcmp(t.name, name) == 0) return t.fn;
  return nullptr;
}

}  // namespace tracered::fuzz
