#include <unistd.h>

#include <cstdlib>
#include <fstream>
#include <stdexcept>
#include <string>
#include <vector>

#include "fuzz/fuzz_targets.hpp"
#include "trace/trace_file.hpp"
#include "trace/trace_io.hpp"

namespace tracered::fuzz {

namespace {

// TraceFileReader reads from a path, so the input lands in one scratch file
// per process (libFuzzer is single-process; the replay driver reuses it
// serially). TMPDIR is honored for sandboxed runners.
const std::string& scratchPath() {
  static const std::string path = [] {
    const char* dir = std::getenv("TMPDIR");
    std::string p = (dir != nullptr && *dir != '\0') ? dir : "/tmp";
    return p + "/tracered_fuzz_trace_file_" + std::to_string(::getpid()) + ".bin";
  }();
  return path;
}

void writeScratch(const std::uint8_t* data, std::size_t size) {
  std::ofstream f(scratchPath(), std::ios::binary | std::ios::trunc);
  f.write(reinterpret_cast<const char*>(data), static_cast<std::streamsize>(size));
}

}  // namespace

int runTraceFile(const std::uint8_t* data, std::size_t size) {
  // Whole-buffer reader over the raw bytes (no file involved).
  try {
    deserializeFullTrace(std::vector<std::uint8_t>(data, data + size));
  } catch (const std::runtime_error&) {  // malformed: documented rejection
  } catch (const std::logic_error&) {    // includes std::out_of_range
  }

  writeScratch(data, size);

  // Whole-file path: format sniff + header decode + readAll.
  try {
    TraceFileReader reader(scratchPath());
    reader.readAll();
  } catch (const std::runtime_error&) {
  } catch (const std::logic_error&) {
  }

  // Chunked path at a tiny chunk size, stressing the StreamByteReader
  // refill/boundary logic; callbacks discard the records.
  try {
    TraceFileReader reader(scratchPath(), /*chunkBytes=*/7);
    reader.streamRecords([](Rank, const RawRecord&) {}, [](Rank) {});
  } catch (const std::runtime_error&) {
  } catch (const std::logic_error&) {
  }
  return 0;
}

}  // namespace tracered::fuzz
