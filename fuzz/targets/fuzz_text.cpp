#include <stdexcept>
#include <string>

#include "fuzz/fuzz_targets.hpp"
#include "trace/text_io.hpp"

namespace tracered::fuzz {

int runText(const std::uint8_t* data, std::size_t size) {
  const std::string text(reinterpret_cast<const char*>(data), size);

  // Whole-string convenience path.
  try {
    traceFromText(text);
  } catch (const std::runtime_error&) {
  } catch (const std::logic_error&) {
  }

  // Line-at-a-time streaming path (what TraceFileReader and the serve
  // feeder drive); must reject exactly the same inputs.
  try {
    TextTraceParser parser;
    std::size_t start = 0;
    while (start <= text.size()) {
      const std::size_t nl = text.find('\n', start);
      const std::size_t end = nl == std::string::npos ? text.size() : nl;
      parser.feedLine(text.substr(start, end - start));
      if (nl == std::string::npos) break;
      start = nl + 1;
    }
    parser.finish();
  } catch (const std::runtime_error&) {
  } catch (const std::logic_error&) {
  }
  return 0;
}

}  // namespace tracered::fuzz
