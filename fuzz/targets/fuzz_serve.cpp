#include <algorithm>
#include <stdexcept>

#include "core/reduction_config.hpp"
#include "fuzz/fuzz_targets.hpp"
#include "serve/feeder.hpp"
#include "serve/protocol.hpp"

namespace tracered::fuzz {

int runServe(const std::uint8_t* data, std::size_t size) {
  // Frame extractor + typed payload decoders over the raw byte stream,
  // exactly as a serve connection consumes its input ring.
  try {
    std::size_t off = 0;
    while (off < size) {
      std::size_t consumed = 0;
      const auto frame = serve::tryExtractFrame(data + off, size - off, consumed);
      if (!frame) break;  // partial tail: a connection would wait for more
      off += consumed;
      try {
        switch (frame->type) {
          case serve::FrameType::kHello:
            serve::decodeHello(frame->payload);
            break;
          case serve::FrameType::kWelcome:
            serve::decodeWelcome(frame->payload);
            break;
          case serve::FrameType::kAck:
            serve::decodeAck(frame->payload);
            break;
          case serve::FrameType::kStats:
            serve::decodeStats(frame->payload);
            break;
          case serve::FrameType::kError:
            serve::decodeError(frame->payload);
            break;
          default:  // DATA/END payloads are opaque here; unknown types too
            break;
        }
      } catch (const std::runtime_error&) {  // malformed payload: rejected
      } catch (const std::logic_error&) {
      }
    }
  } catch (const std::runtime_error&) {  // malformed header: rejected
  }

  // TraceStreamFeeder over the same bytes, chunked; the first byte picks the
  // chunk size so the fuzzer explores push-boundary placements.
  const std::size_t chunk = size != 0 ? static_cast<std::size_t>(data[0] % 64) + 1 : 1;
  try {
    serve::TraceStreamFeeder feeder(
        core::ReductionConfig::fromName("avgWave@0.2"));
    for (std::size_t off = 0; off < size; off += chunk)
      feeder.push(data + off, std::min(chunk, size - off));
    feeder.finishStream();
  } catch (const std::runtime_error&) {
  } catch (const std::logic_error&) {  // includes invalid_argument/out_of_range
  }
  return 0;
}

}  // namespace tracered::fuzz
