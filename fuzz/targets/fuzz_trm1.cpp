#include <cstdio>
#include <cstdlib>
#include <optional>
#include <stdexcept>
#include <vector>

#include "fuzz/fuzz_targets.hpp"
#include "trace/trace_io.hpp"

namespace tracered::fuzz {

int runTrm1(const std::uint8_t* data, std::size_t size) {
  const std::vector<std::uint8_t> bytes(data, data + size);

  // TRM1: the cross-rank merged format `tracered info` auto-detects.
  std::optional<MergedReducedTrace> merged;
  try {
    merged = deserializeMergedTrace(bytes);
  } catch (const std::runtime_error&) {
  } catch (const std::logic_error&) {
  }
  if (merged) {
    // Accepted input => the writer must produce a stable, readable encoding:
    // serialize(deserialize(serialize(x))) must be byte-identical to
    // serialize(x). (The input itself may use non-minimal varints, so only
    // the second round is required to be a fixpoint.) A throw or mismatch
    // here escapes as a finding.
    const std::vector<std::uint8_t> once = serializeMergedTrace(*merged);
    const MergedReducedTrace again = deserializeMergedTrace(once);
    if (serializeMergedTrace(again) != once) {
      std::fprintf(stderr, "fuzz_trm1: TRM1 serialize/deserialize fixpoint violated\n");
      std::abort();
    }
  }

  // TRR1 shares the segment/exec encoding — same adversarial byte stream,
  // same fixpoint property.
  std::optional<ReducedTrace> reduced;
  try {
    reduced = deserializeReducedTrace(bytes);
  } catch (const std::runtime_error&) {
  } catch (const std::logic_error&) {
  }
  if (reduced) {
    const std::vector<std::uint8_t> once = serializeReducedTrace(*reduced);
    const ReducedTrace again = deserializeReducedTrace(once);
    if (serializeReducedTrace(again) != once) {
      std::fprintf(stderr, "fuzz_trm1: TRR1 serialize/deserialize fixpoint violated\n");
      std::abort();
    }
  }
  return 0;
}

}  // namespace tracered::fuzz
