#include <algorithm>
#include <optional>
#include <stdexcept>
#include <string>
#include <vector>

#include "analysis/analyzer.hpp"
#include "analysis/compare.hpp"
#include "analysis/render.hpp"
#include "analysis/report.hpp"
#include "core/reconstruct.hpp"
#include "fuzz/fuzz_targets.hpp"
#include "trace/trace_io.hpp"

namespace tracered::fuzz {

int runAnalyze(const std::uint8_t* data, std::size_t size) {
  const std::vector<std::uint8_t> bytes(data, data + size);

  // The `tracered analyze <file.trr>` surface: TRR1 bytes -> reconstruct ->
  // severity-cube analysis -> comparison + report rendering.
  std::optional<ReducedTrace> reduced;
  try {
    reduced = deserializeReducedTrace(bytes);
  } catch (const std::runtime_error&) {
  } catch (const std::logic_error&) {
  }
  if (!reduced) return 0;

  // Reconstruction is multiplicative (execs x events per representative): a
  // few hundred accepted bytes can legally demand gigabytes. That is an
  // input-size property, not a defect; bound the expansion so the harness
  // probes the analysis logic instead of the allocator.
  std::size_t expandedEvents = 0;
  for (const RankReduced& r : reduced->ranks) {
    std::size_t maxEvents = 0;
    for (const Segment& s : r.stored) maxEvents = std::max(maxEvents, s.events.size());
    expandedEvents += r.execs.size() * (maxEvents + 1);
  }
  if (expandedEvents > (1u << 20)) return 0;

  try {
    const SegmentedTrace seg = core::reconstruct(*reduced);
    const analysis::SeverityCube cube = analysis::analyze(seg);
    // Every downstream consumer of a cube must be total on whatever analyze
    // accepts: the self-comparison (rank counts agree by construction), the
    // CUBE-style rendering, and the CLI report rows.
    (void)analysis::compareTrends(cube, cube);
    (void)analysis::renderCube(cube, reduced->names, 8);
    (void)analysis::cubeReportRows(cube, reduced->names, 8);
  } catch (const std::runtime_error&) {
    // analyze() rejects inconsistent collective sequences.
  } catch (const std::logic_error&) {
    // Out-of-range rank / representative ids are documented rejections.
  }
  return 0;
}

}  // namespace tracered::fuzz
