#include <cstdio>
#include <cstdlib>
#include <stdexcept>
#include <string>

#include "core/reduction_config.hpp"
#include "fuzz/fuzz_targets.hpp"

namespace tracered::fuzz {

int runReductionConfig(const std::uint8_t* data, std::size_t size) {
  const std::string spec(reinterpret_cast<const char*>(data), size);
  core::ReductionConfig config;
  try {
    config = core::ReductionConfig::fromName(spec);
  } catch (const std::invalid_argument&) {  // documented rejection
    return 0;
  } catch (const std::runtime_error&) {
    return 0;
  }
  // Accepted spelling => toString must round-trip losslessly (the sweeps
  // serialize configs through this pair).
  const core::ReductionConfig back = core::ReductionConfig::fromName(config.toString());
  if (back.method != config.method || back.threshold != config.threshold) {
    std::fprintf(stderr, "fuzz_reduction_config: fromName/toString round trip broke on '%s'\n",
                 config.toString().c_str());
    std::abort();
  }
  return 0;
}

}  // namespace tracered::fuzz
