// Fuzz target functions for every surface that parses untrusted bytes.
//
// Each target takes one arbitrary byte string and must be crash-free on ALL
// inputs: documented rejection exceptions (std::runtime_error and friends —
// the contract every parser advertises) are caught and count as a clean
// rejection; anything else that escapes — a sanitizer report, std::bad_alloc
// from an attacker-controlled allocation, an unexpected exception type, an
// assertion — is a finding.
//
// The same functions are driven three ways (CMakeLists "fuzz" section):
//   * fuzz_<name>      libFuzzer harness (Clang, -DTRACERED_FUZZ=ON)
//   * fuzz_replay      deterministic replay of fuzz/corpus/regressions/<name>/
//                      (every compiler; registered as the fuzz_corpus_replay
//                      ctest so past crashers stay permanent regression tests)
//   * fuzz_gen_seeds   writes well-formed seed corpora for the fuzzers
//
// Workflow for a new crasher: drop the input into
// fuzz/corpus/regressions/<target>/, fix the defect, and the replay ctest
// pins it forever (docs/DEVELOPMENT.md has the full recipe).
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

namespace tracered::fuzz {

using TargetFn = int (*)(const std::uint8_t* data, std::size_t size);

struct TargetInfo {
  const char* name;  ///< corpus subdirectory + harness binary suffix
  TargetFn fn;
};

/// Every registered target, in deterministic order.
const std::vector<TargetInfo>& allTargets();

/// Lookup by name; nullptr when unknown.
TargetFn targetByName(const char* name);

/// TraceFileReader over TRF1 + text, whole (readAll) and chunked
/// (streamRecords at a tiny chunk size), plus the whole-buffer
/// deserializeFullTrace — the `tracered reduce/info/convert` input surface.
int runTraceFile(const std::uint8_t* data, std::size_t size);

/// deserializeMergedTrace (TRM1) and deserializeReducedTrace (TRR1), with a
/// serialize/deserialize fixpoint check on accepted inputs.
int runTrm1(const std::uint8_t* data, std::size_t size);

/// TextTraceParser: whole-string traceFromText plus line-at-a-time feeding.
int runText(const std::uint8_t* data, std::size_t size);

/// serve wire surface: tryExtractFrame + typed payload decoders over the
/// byte stream, then TraceStreamFeeder fed the same bytes in chunks.
int runServe(const std::uint8_t* data, std::size_t size);

/// ReductionConfig::fromName, with a toString round-trip check on accepted
/// spellings.
int runReductionConfig(const std::uint8_t* data, std::size_t size);

/// The severity-cube path over arbitrary TRR1 bytes: deserialize ->
/// reconstruct (expansion-bounded) -> analyze -> compareTrends/render/report
/// rows — the `tracered analyze`/`diff` input surface.
int runAnalyze(const std::uint8_t* data, std::size_t size);

}  // namespace tracered::fuzz
